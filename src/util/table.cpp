#include "util/table.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace nada::util {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TextTable::add_row_mixed(const std::vector<std::string>& text_cells,
                              const std::vector<double>& numeric_cells,
                              int precision) {
  std::vector<std::string> row = text_cells;
  row.reserve(text_cells.size() + numeric_cells.size());
  for (double v : numeric_cells) row.push_back(format_double(v, precision));
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  // Compute per-column widths over header + rows.
  std::vector<std::size_t> widths;
  auto widen = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  if (!header_.empty()) widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream out;
  if (!title_.empty()) out << "== " << title_ << " ==\n";
  auto emit = [&out, &widths](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << "  ";
      out << row[i];
      if (i + 1 < row.size()) {
        out << std::string(widths[i] - row[i].size(), ' ');
      }
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      total += widths[i] + (i > 0 ? 2 : 0);
    }
    out << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
  return out.str();
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string escaped = "\"";
  for (char c : cell) {
    if (c == '"') escaped += '"';
    escaped += c;
  }
  escaped += '"';
  return escaped;
}

}  // namespace

std::string TextTable::to_csv() const {
  std::ostringstream out;
  auto emit = [&out](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << csv_escape(row[i]);
    }
    out << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void TextTable::print(std::ostream& os) const { os << to_string(); }

std::string format_double(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

std::string format_percent(double fraction, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  if (fraction >= 0) out << '+';
  out << fraction * 100.0 << '%';
  return out.str();
}

void write_file(const std::string& path, const std::string& content) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path());
  }
  std::ofstream out(p);
  if (!out) throw std::runtime_error("write_file: cannot open " + path);
  out << content;
  if (!out) throw std::runtime_error("write_file: write failed for " + path);
}

}  // namespace nada::util

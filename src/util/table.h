// Plain-text table and CSV rendering for the experiment reports. Every bench
// binary prints its paper table through this so the output format is uniform.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace nada::util {

/// Column-aligned text table with an optional title, rendered with a
/// box-drawing-free ASCII style so output diffs cleanly in CI logs.
class TextTable {
 public:
  explicit TextTable(std::string title = "") : title_(std::move(title)) {}

  /// Sets the header row. Resets nothing else; call before adding rows.
  void set_header(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience: formats each cell with fixed precision.
  void add_row_mixed(const std::vector<std::string>& text_cells,
                     const std::vector<double>& numeric_cells,
                     int precision = 3);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Renders with padding; includes the title and a separator under the
  /// header when one was set.
  [[nodiscard]] std::string to_string() const;

  /// RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines).
  [[nodiscard]] std::string to_csv() const;

  void print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision, trimming trailing zeros is NOT
/// done (fixed width keeps table columns stable).
std::string format_double(double value, int precision = 3);

/// Formats a ratio as a signed percentage, e.g. 0.529 -> "+52.9%".
std::string format_percent(double fraction, int precision = 1);

/// Writes content to a file, creating parent directories; throws on failure.
void write_file(const std::string& path, const std::string& content);

}  // namespace nada::util

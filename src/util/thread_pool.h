// Minimal fixed-size thread pool used to train candidate designs in
// parallel. Tasks are type-erased closures; parallel_for provides the
// common "independent work items" pattern with deterministic result slots.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace nada::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the future resolves when the task completes.
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using Result = std::invoke_result_t<F>;
    auto packaged = std::make_shared<std::packaged_task<Result()>>(
        std::forward<F>(task));
    std::future<Result> result = packaged->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool::submit after shutdown");
      }
      tasks_.emplace([packaged] { (*packaged)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs fn(i) for i in [0, n) across the pool and blocks until all finish.
  /// fn must be safe to call concurrently for distinct i. If any invocation
  /// throws, every remaining item still runs to completion and the first
  /// captured exception is rethrown on the calling thread.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace nada::util

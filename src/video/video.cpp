#include "video/video.h"

#include <cmath>
#include <stdexcept>

namespace nada::video {

BitrateLadder::BitrateLadder(std::vector<double> levels_kbps)
    : levels_kbps_(std::move(levels_kbps)) {
  if (levels_kbps_.empty()) {
    throw std::invalid_argument("BitrateLadder: empty");
  }
  for (std::size_t i = 0; i < levels_kbps_.size(); ++i) {
    if (levels_kbps_[i] <= 0.0) {
      throw std::invalid_argument("BitrateLadder: non-positive bitrate");
    }
    if (i > 0 && levels_kbps_[i] <= levels_kbps_[i - 1]) {
      throw std::invalid_argument("BitrateLadder: must strictly increase");
    }
  }
}

double BitrateLadder::kbps(std::size_t level) const {
  if (level >= levels_kbps_.size()) {
    throw std::out_of_range("BitrateLadder::kbps: level out of range");
  }
  return levels_kbps_[level];
}

const BitrateLadder& pensieve_ladder() {
  static const BitrateLadder kLadder({300, 750, 1200, 1850, 2850, 4300});
  return kLadder;
}

const BitrateLadder& youtube_ladder() {
  static const BitrateLadder kLadder({1850, 2850, 4300, 12000, 24000, 53000});
  return kLadder;
}

Video::Video(std::string name, const BitrateLadder& ladder,
             std::size_t num_chunks, double chunk_len_s, util::Rng& rng)
    : name_(std::move(name)),
      ladder_(&ladder),
      num_chunks_(num_chunks),
      chunk_len_s_(chunk_len_s) {
  if (num_chunks_ == 0) throw std::invalid_argument("Video: no chunks");
  if (chunk_len_s_ <= 0.0) {
    throw std::invalid_argument("Video: chunk length <= 0");
  }
  // Scene complexity drifts smoothly: AR(1) in log-space around 1.0 with a
  // +/-15% typical band, matching chunk-size variation in real encodes.
  vbr_factor_.reserve(num_chunks_);
  double level = 0.0;  // log-space deviation
  for (std::size_t i = 0; i < num_chunks_; ++i) {
    level = 0.85 * level + rng.normal(0.0, 0.06);
    vbr_factor_.push_back(std::exp(level));
  }
}

double Video::chunk_bytes(std::size_t index, std::size_t level) const {
  if (index >= num_chunks_) {
    throw std::out_of_range("Video::chunk_bytes: chunk index out of range");
  }
  const double nominal_bytes =
      ladder_->kbps(level) * 1000.0 / 8.0 * chunk_len_s_;
  return nominal_bytes * vbr_factor_[index];
}

std::vector<double> Video::chunk_bytes_all_levels(std::size_t index) const {
  std::vector<double> sizes;
  sizes.reserve(ladder_->levels());
  for (std::size_t level = 0; level < ladder_->levels(); ++level) {
    sizes.push_back(chunk_bytes(index, level));
  }
  return sizes;
}

Video make_test_video(const BitrateLadder& ladder, std::uint64_t seed) {
  util::Rng rng(seed);
  return Video("test_video", ladder, 48, 4.0, rng);
}

QoELin::QoELin(const BitrateLadder& ladder)
    : ladder_(&ladder), mu_(ladder.max_kbps() / 1000.0) {}

double QoELin::chunk_reward(std::size_t level, std::size_t prev_level,
                            double rebuffer_s) const {
  if (rebuffer_s < 0.0) {
    throw std::invalid_argument("QoELin: negative rebuffer");
  }
  const double quality = ladder_->mbps(level);
  const double prev_quality = ladder_->mbps(prev_level);
  return quality - mu_ * rebuffer_s - std::abs(quality - prev_quality);
}

}  // namespace nada::video

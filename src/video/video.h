// Video model: bitrate ladders, chunk sizes, and the QoE_lin reward.
//
// Mirrors the Pensieve setup the paper adopts: 48 chunks of 4 seconds, six
// bitrate levels. Two ladders are used — Pensieve's original for FCC and
// Starlink, and YouTube's recommended encoding ladder for the
// higher-bandwidth 4G and 5G datasets (paper §3.1).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/rng.h"

namespace nada::video {

/// A fixed set of encoded bitrates, lowest first, in kbps.
class BitrateLadder {
 public:
  explicit BitrateLadder(std::vector<double> levels_kbps);

  [[nodiscard]] std::size_t levels() const { return levels_kbps_.size(); }
  [[nodiscard]] double kbps(std::size_t level) const;
  [[nodiscard]] double mbps(std::size_t level) const {
    return kbps(level) / 1000.0;
  }
  [[nodiscard]] double max_kbps() const { return levels_kbps_.back(); }
  [[nodiscard]] std::span<const double> all_kbps() const {
    return levels_kbps_;
  }

 private:
  std::vector<double> levels_kbps_;
};

/// Pensieve's ladder: {300, 750, 1200, 1850, 2850, 4300} kbps.
[[nodiscard]] const BitrateLadder& pensieve_ladder();

/// YouTube-recommended ladder for 4G/5G:
/// {1850, 2850, 4300, 12000, 24000, 53000} kbps.
[[nodiscard]] const BitrateLadder& youtube_ladder();

/// A concrete encoded video: per-chunk, per-level sizes in bytes.
///
/// Sizes follow the nominal bitrate with smooth variable-bitrate (VBR)
/// variation: scene complexity drifts across chunks, so a chunk's size is
/// the nominal size times a per-chunk factor shared across levels (encoders
/// allocate proportionally across the ladder for the same content).
class Video {
 public:
  Video(std::string name, const BitrateLadder& ladder, std::size_t num_chunks,
        double chunk_len_s, util::Rng& rng);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const BitrateLadder& ladder() const { return *ladder_; }
  [[nodiscard]] std::size_t num_chunks() const { return num_chunks_; }
  [[nodiscard]] double chunk_len_s() const { return chunk_len_s_; }

  /// Size in bytes of chunk `index` encoded at `level`.
  [[nodiscard]] double chunk_bytes(std::size_t index, std::size_t level) const;

  /// Sizes of chunk `index` at every level (ladder order).
  [[nodiscard]] std::vector<double> chunk_bytes_all_levels(
      std::size_t index) const;

  /// Total video duration in seconds.
  [[nodiscard]] double duration_s() const {
    return chunk_len_s_ * static_cast<double>(num_chunks_);
  }

 private:
  std::string name_;
  const BitrateLadder* ladder_;
  std::size_t num_chunks_;
  double chunk_len_s_;
  std::vector<double> vbr_factor_;  // one per chunk, mean ~1
};

/// Builds the standard 48-chunk, 4-second test video used across the
/// experiments (deterministic for a given seed).
[[nodiscard]] Video make_test_video(const BitrateLadder& ladder,
                                    std::uint64_t seed);

/// QoE_lin from Pensieve: per-chunk reward
///   q(R_t) - mu * rebuffer_s - |q(R_t) - q(R_{t-1})|
/// with q(R) = bitrate in Mbps and mu equal to the ladder's top bitrate in
/// Mbps (4.3 for the Pensieve ladder), the convention Pensieve's QoE_lin
/// uses so that one second of stall cancels one chunk at max quality.
class QoELin {
 public:
  explicit QoELin(const BitrateLadder& ladder);

  /// Reward for downloading a chunk at `level` after `rebuffer_s` of stall,
  /// when the previous chunk used `prev_level`.
  [[nodiscard]] double chunk_reward(std::size_t level, std::size_t prev_level,
                                    double rebuffer_s) const;

  [[nodiscard]] double rebuffer_penalty_per_s() const { return mu_; }
  [[nodiscard]] double smoothness_weight() const { return 1.0; }

 private:
  const BitrateLadder* ladder_;
  double mu_;
};

}  // namespace nada::video

// Tests for the classic ABR baseline policies.
#include <gtest/gtest.h>

#include <cmath>

#include "abr/policies.h"
#include "trace/generator.h"
#include "video/video.h"

namespace nada::abr {
namespace {

env::Observation mid_stream_obs() {
  env::Observation obs;
  obs.throughput_mbps = {2.0, 2.2, 1.8, 2.1, 2.0, 1.9, 2.3, 2.0};
  obs.download_time_s = {1.5, 1.4, 1.7, 1.5, 1.5, 1.6, 1.3, 1.5};
  obs.buffer_s_history = {8, 10, 12, 13, 15, 16, 18, 20};
  obs.ladder_kbps = {300, 750, 1200, 1850, 2850, 4300};
  obs.next_chunk_bytes = {150000, 375000, 600000, 925000, 1425000, 2150000};
  obs.buffer_s = 20.0;
  obs.chunks_remaining = 30;
  obs.total_chunks = 48;
  obs.last_bitrate_kbps = 1200;
  obs.chunk_len_s = 4.0;
  return obs;
}

trace::Trace constant_trace(double mbps) {
  std::vector<trace::TracePoint> pts;
  for (int t = 1; t <= 400; ++t) {
    pts.push_back({static_cast<double>(t), mbps * 1000.0});
  }
  return trace::Trace("const", std::move(pts));
}

// ---- FixedPolicy --------------------------------------------------------------

TEST(FixedPolicy, ReturnsItsLevel) {
  FixedPolicy p(3);
  EXPECT_EQ(p.choose(mid_stream_obs()), 3u);
}

TEST(FixedPolicy, OutOfLadderThrows) {
  FixedPolicy p(9);
  EXPECT_THROW(p.choose(mid_stream_obs()), std::out_of_range);
}

// ---- BufferBasedPolicy ----------------------------------------------------------

TEST(BufferBased, LowBufferPicksLowest) {
  BufferBasedPolicy p(5.0, 40.0);
  auto obs = mid_stream_obs();
  obs.buffer_s = 3.0;
  EXPECT_EQ(p.choose(obs), 0u);
}

TEST(BufferBased, FullCushionPicksHighest) {
  BufferBasedPolicy p(5.0, 40.0);
  auto obs = mid_stream_obs();
  obs.buffer_s = 50.0;
  EXPECT_EQ(p.choose(obs), 5u);
}

TEST(BufferBased, MonotoneInBuffer) {
  BufferBasedPolicy p(5.0, 40.0);
  auto obs = mid_stream_obs();
  std::size_t prev = 0;
  for (double b = 0.0; b <= 60.0; b += 2.0) {
    obs.buffer_s = b;
    const std::size_t level = p.choose(obs);
    EXPECT_GE(level, prev);
    prev = level;
  }
  EXPECT_EQ(prev, 5u);
}

TEST(BufferBased, RejectsBadParameters) {
  EXPECT_THROW(BufferBasedPolicy(-1.0, 40.0), std::invalid_argument);
  EXPECT_THROW(BufferBasedPolicy(5.0, 0.0), std::invalid_argument);
}

// ---- RateBasedPolicy --------------------------------------------------------------

TEST(RateBased, PicksTopRungBelowBudget) {
  RateBasedPolicy p(0.85, 4.0);
  auto obs = mid_stream_obs();
  // Harmonic mean ~2.0 Mbps, budget ~1700 kbps -> level 2 (1200 kbps).
  EXPECT_EQ(p.choose(obs), 2u);
}

TEST(RateBased, StartupUsesLowest) {
  RateBasedPolicy p(0.85, 4.0);
  auto obs = mid_stream_obs();
  obs.buffer_s = 1.0;
  EXPECT_EQ(p.choose(obs), 0u);
}

TEST(RateBased, ZeroHistoryUsesLowest) {
  RateBasedPolicy p;
  auto obs = mid_stream_obs();
  obs.throughput_mbps.assign(8, 0.0);
  EXPECT_EQ(p.choose(obs), 0u);
}

TEST(RateBased, RejectsBadSafety) {
  EXPECT_THROW(RateBasedPolicy(0.0), std::invalid_argument);
  EXPECT_THROW(RateBasedPolicy(1.5), std::invalid_argument);
}

// ---- RobustMpcPolicy -----------------------------------------------------------------

TEST(RobustMpc, StableConditionsPickSustainableRate) {
  RobustMpcPolicy p(3);
  auto obs = mid_stream_obs();  // ~2 Mbps forecast
  // With only a modest buffer there is no slack to burn: the plan must be
  // sustainable at the forecast rate. (With a large buffer MPC will
  // rationally spend it on higher quality within its horizon.)
  obs.buffer_s = 6.0;
  const std::size_t level = p.choose(obs);
  EXPECT_GE(level, 1u);
  EXPECT_LE(level, 3u);
}

TEST(RobustMpc, EmptyBufferConservative) {
  RobustMpcPolicy p(3);
  auto obs = mid_stream_obs();
  obs.buffer_s = 0.5;
  obs.last_bitrate_kbps = 300;
  const std::size_t level = p.choose(obs);
  EXPECT_LE(level, 1u);
}

TEST(RobustMpc, HighBandwidthPicksHigh) {
  RobustMpcPolicy p(3);
  auto obs = mid_stream_obs();
  obs.throughput_mbps.assign(8, 50.0);
  obs.last_bitrate_kbps = 4300;
  obs.buffer_s = 30.0;
  EXPECT_EQ(p.choose(obs), 5u);
}

TEST(RobustMpc, ErrorDiscountLowersForecast) {
  RobustMpcPolicy p(2);
  auto varying = mid_stream_obs();
  // Feed wildly wrong history twice so the tracked error grows; the pick
  // should not exceed what a discounted forecast supports.
  varying.throughput_mbps.assign(8, 10.0);
  (void)p.choose(varying);
  varying.throughput_mbps.assign(8, 1.0);
  (void)p.choose(varying);
  varying.throughput_mbps.assign(8, 10.0);
  varying.buffer_s = 6.0;
  const std::size_t level = p.choose(varying);
  RobustMpcPolicy fresh(2);
  auto stable = varying;
  const std::size_t fresh_level = fresh.choose(stable);
  EXPECT_LE(level, fresh_level);
}

TEST(RobustMpc, RejectsBadHorizon) {
  EXPECT_THROW(RobustMpcPolicy(0), std::invalid_argument);
  EXPECT_THROW(RobustMpcPolicy(6), std::invalid_argument);
}

TEST(RobustMpc, ResetClearsErrorTracking) {
  RobustMpcPolicy p(2);
  auto obs = mid_stream_obs();
  obs.throughput_mbps.assign(8, 10.0);
  (void)p.choose(obs);
  obs.throughput_mbps.assign(8, 1.0);
  (void)p.choose(obs);
  p.reset();
  // After reset the first decision has no error memory: same as fresh.
  RobustMpcPolicy fresh(2);
  EXPECT_EQ(p.choose(obs), fresh.choose(obs));
}

// ---- evaluate / integration ---------------------------------------------------------

TEST(HarmonicMean, KnownValues) {
  EXPECT_NEAR(harmonic_mean_positive(std::vector<double>{1.0, 4.0}), 1.6,
              1e-12);
  EXPECT_DOUBLE_EQ(harmonic_mean_positive(std::vector<double>{0.0, 0.0}),
                   0.0);
  EXPECT_NEAR(harmonic_mean_positive(std::vector<double>{0.0, 2.0}), 2.0,
              1e-12);
}

TEST(EvaluatePolicy, SmartPoliciesBeatFixedMax) {
  const auto tr = constant_trace(2.0);
  std::vector<trace::Trace> traces = {tr};
  const auto video = video::make_test_video(video::pensieve_ladder(), 3);
  FixedPolicy max_policy(5);
  BufferBasedPolicy bba;
  RobustMpcPolicy mpc;
  const double fixed = evaluate_policy(max_policy, traces, video,
                                       env::Fidelity::kSimulation, 1);
  const double buffer = evaluate_policy(bba, traces, video,
                                        env::Fidelity::kSimulation, 1);
  const double mpc_score = evaluate_policy(mpc, traces, video,
                                           env::Fidelity::kSimulation, 1);
  EXPECT_GT(buffer, fixed);
  EXPECT_GT(mpc_score, fixed);
}

TEST(EvaluatePolicy, MpcCompetitiveOnRealisticTraces) {
  const trace::Dataset ds =
      trace::build_dataset(trace::Environment::k4G, 0.05, 5);
  const auto video = video::make_test_video(video::youtube_ladder(), 3);
  RobustMpcPolicy mpc;
  FixedPolicy lowest(0);
  const double mpc_score = evaluate_policy(mpc, ds.test, video,
                                           env::Fidelity::kSimulation, 2);
  const double low_score = evaluate_policy(lowest, ds.test, video,
                                           env::Fidelity::kSimulation, 2);
  EXPECT_GT(mpc_score, low_score);
}

TEST(StandardBaselines, AllRunEverywhere) {
  const trace::Dataset ds =
      trace::build_dataset(trace::Environment::kStarlink, 0.1, 9);
  const auto video = video::make_test_video(video::pensieve_ladder(), 4);
  for (auto& policy : standard_baselines()) {
    const double score = evaluate_policy(*policy, ds.test, video,
                                         env::Fidelity::kSimulation, 3);
    EXPECT_TRUE(std::isfinite(score)) << policy->name();
    const double emu = evaluate_policy(*policy, ds.test, video,
                                       env::Fidelity::kEmulation, 3);
    EXPECT_TRUE(std::isfinite(emu)) << policy->name();
  }
}

}  // namespace
}  // namespace nada::abr

// The batched probe engine's headline guarantee: given the same seeds,
// BatchProbeTrainer is BIT-IDENTICAL to a fresh rl::Trainer per candidate —
// reward curves, checkpoint scores, failure captures — and the pipeline's
// batched probe stage journals exactly the records the serial stage would.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>
#include <utility>

#include "core/pipeline.h"
#include "dsl/state_program.h"
#include "gen/state_gen.h"
#include "rl/batch_probe.h"
#include "rl/trainer.h"
#include "store/candidate_store.h"
#include "trace/generator.h"
#include "util/thread_pool.h"
#include "video/video.h"

namespace nada::rl {
namespace {

nn::ArchSpec tiny_arch() {
  nn::ArchSpec spec = nn::ArchSpec::pensieve();
  spec.conv_filters = 8;
  spec.scalar_hidden = 8;
  spec.merge_hidden = 16;
  return spec;
}

trace::Dataset tiny_dataset(std::uint64_t seed = 11) {
  return trace::build_dataset(trace::Environment::kFcc, 0.03, seed);
}

std::vector<dsl::StateProgram> candidate_programs() {
  std::vector<dsl::StateProgram> programs;
  programs.push_back(
      dsl::StateProgram::compile(dsl::pensieve_state_source()));
  programs.push_back(dsl::StateProgram::compile(
      "emit \"buf\" = buffer_size_s / 10.0;\n"
      "emit \"tput\" = throughput_mbps / 8.0;\n"));
  programs.push_back(dsl::StateProgram::compile(
      "emit \"tput\" = throughput_mbps / 8.0;\n"
      "emit \"dl\" = download_time_s / 10.0;\n"
      "emit \"left\" = chunks_remaining / total_chunks;\n"));
  return programs;
}

std::vector<ProbeJob> make_jobs(const std::vector<dsl::StateProgram>& programs,
                                const nn::ArchSpec& arch, std::size_t count) {
  std::vector<ProbeJob> jobs;
  jobs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    jobs.push_back(ProbeJob{&programs[i % programs.size()], &arch,
                            0xb10bULL * 131 + i * 0x9e3779b9ULL});
  }
  return jobs;
}

std::vector<TrainResult> run_serial(const trace::Dataset& dataset,
                                    const video::Video& video,
                                    const TrainConfig& config,
                                    const std::vector<ProbeJob>& jobs) {
  std::vector<TrainResult> results;
  results.reserve(jobs.size());
  for (const auto& job : jobs) {
    Trainer trainer(dataset, video, config, job.seed);
    results.push_back(trainer.train(*job.program, *job.spec));
  }
  return results;
}

void expect_identical(const TrainResult& serial, const TrainResult& batched) {
  EXPECT_EQ(serial.failed, batched.failed);
  EXPECT_EQ(serial.error, batched.error);
  // operator== on vector<double> is exact: any bit drift fails.
  EXPECT_EQ(serial.train_rewards, batched.train_rewards);
  EXPECT_EQ(serial.test_epochs, batched.test_epochs);
  EXPECT_EQ(serial.test_scores, batched.test_scores);
  EXPECT_EQ(serial.final_score, batched.final_score);
  EXPECT_EQ(serial.emulation_score, batched.emulation_score);
}

TEST(BatchProbeTrainer, BitIdenticalToSerialTrainer) {
  const auto dataset = tiny_dataset();
  const auto video = video::make_test_video(video::pensieve_ladder(), 5);
  const auto programs = candidate_programs();
  const auto arch = tiny_arch();
  TrainConfig config;
  config.epochs = 12;
  config.evaluate_checkpoints = false;  // the pipeline's probe setting
  const auto jobs = make_jobs(programs, arch, 7);

  const auto serial = run_serial(dataset, video, config, jobs);
  // Block size 3 forces blocks that straddle different programs and leave a
  // ragged tail.
  const BatchProbeTrainer batched(dataset, video,
                                  BatchProbeConfig{config, 3});
  const auto batch = batched.train(jobs);

  ASSERT_EQ(batch.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("candidate " + std::to_string(i));
    ASSERT_FALSE(serial[i].failed) << serial[i].error;
    expect_identical(serial[i], batch[i]);
  }
}

TEST(BatchProbeTrainer, BitIdenticalWithCheckpointEvaluation) {
  const auto dataset = tiny_dataset();
  const auto video = video::make_test_video(video::pensieve_ladder(), 6);
  const auto programs = candidate_programs();
  const auto arch = tiny_arch();
  TrainConfig config;
  config.epochs = 10;
  config.test_interval = 5;
  config.max_eval_traces = 2;  // exercises the strided eval subset too
  const auto jobs = make_jobs(programs, arch, 4);

  const auto serial = run_serial(dataset, video, config, jobs);
  const BatchProbeTrainer batched(dataset, video,
                                  BatchProbeConfig{config, 4});
  const auto batch = batched.train(jobs);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("candidate " + std::to_string(i));
    ASSERT_EQ(serial[i].test_scores.size(), 2u);
    expect_identical(serial[i], batch[i]);
  }
}

TEST(BatchProbeTrainer, BitIdenticalUnderEmulationFidelity) {
  // Emulation sessions draw jitter from the candidate's RNG inside every
  // step, so this pins the interleaving of action draws and session draws.
  const auto dataset = tiny_dataset();
  const auto video = video::make_test_video(video::pensieve_ladder(), 7);
  const auto programs = candidate_programs();
  const auto arch = tiny_arch();
  TrainConfig config;
  config.epochs = 6;
  config.fidelity = env::Fidelity::kEmulation;
  config.evaluate_checkpoints = false;
  const auto jobs = make_jobs(programs, arch, 5);

  const auto serial = run_serial(dataset, video, config, jobs);
  const BatchProbeTrainer batched(dataset, video,
                                  BatchProbeConfig{config, 2});
  const auto batch = batched.train(jobs);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("candidate " + std::to_string(i));
    expect_identical(serial[i], batch[i]);
  }
}

TEST(BatchProbeTrainer, FailedCandidateIsolatedFromBlock) {
  const auto dataset = tiny_dataset();
  const auto video = video::make_test_video(video::pensieve_ladder(), 8);
  const auto programs = candidate_programs();
  const auto fragile = dsl::StateProgram::compile(
      "emit \"x\" = log(vmin(throughput_mbps));\n");
  const auto arch = tiny_arch();
  TrainConfig config;
  config.epochs = 8;
  config.evaluate_checkpoints = false;

  // Fragile candidate in the middle of one block.
  std::vector<ProbeJob> jobs = make_jobs(programs, arch, 4);
  jobs.insert(jobs.begin() + 1, ProbeJob{&fragile, &arch, 0xdeadULL});

  const auto serial = run_serial(dataset, video, config, jobs);
  const BatchProbeTrainer batched(dataset, video,
                                  BatchProbeConfig{config, 5});
  const auto batch = batched.train(jobs);

  ASSERT_TRUE(serial[1].failed);
  EXPECT_TRUE(batch[1].failed);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("candidate " + std::to_string(i));
    expect_identical(serial[i], batch[i]);
  }
}

TEST(BatchProbeTrainer, PoolScheduledBlocksMatchSerial) {
  const auto dataset = tiny_dataset();
  const auto video = video::make_test_video(video::pensieve_ladder(), 9);
  const auto programs = candidate_programs();
  const auto arch = tiny_arch();
  TrainConfig config;
  config.epochs = 8;
  config.evaluate_checkpoints = false;
  const auto jobs = make_jobs(programs, arch, 9);

  const auto serial = run_serial(dataset, video, config, jobs);
  util::ThreadPool pool(3);
  const BatchProbeTrainer batched(dataset, video,
                                  BatchProbeConfig{config, 2});
  const auto batch = batched.train(jobs, &pool);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("candidate " + std::to_string(i));
    expect_identical(serial[i], batch[i]);
  }
}

TEST(BatchProbeTrainer, RejectsDegenerateConfig) {
  const auto dataset = tiny_dataset();
  const auto video = video::make_test_video(video::pensieve_ladder(), 10);
  TrainConfig zero_epochs;
  zero_epochs.epochs = 0;
  EXPECT_THROW(
      BatchProbeTrainer(dataset, video, BatchProbeConfig{zero_epochs, 4}),
      std::invalid_argument);
  const auto programs = candidate_programs();
  const auto arch = tiny_arch();
  TrainConfig config;
  config.epochs = 2;
  const BatchProbeTrainer trainer(dataset, video,
                                  BatchProbeConfig{config, 4});
  std::vector<ProbeJob> null_job{ProbeJob{nullptr, &arch, 1}};
  EXPECT_THROW((void)trainer.train(null_job), std::invalid_argument);
}

// ---- pipeline-level equivalence ---------------------------------------------

class TempStoreDir {
 public:
  TempStoreDir() {
    path_ = (std::filesystem::temp_directory_path() / "nada_batch_probe_test")
                .string();
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempStoreDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] std::string file(const std::string& name) const {
    return path_ + "/" + name;
  }

 private:
  std::string path_;
};

TEST(PipelineProbeBatch, BatchedAndSerialProduceIdenticalOutcomesAndJournals) {
  const auto dataset = tiny_dataset(21);
  const auto video = video::make_test_video(video::pensieve_ladder(), 5);
  util::ThreadPool pool(2);

  core::PipelineConfig config;
  config.num_candidates = 14;
  config.early_epochs = 6;
  config.full_train_top = 2;
  config.seeds = 2;
  config.train.epochs = 8;
  config.train.test_interval = 4;
  config.probe_block = 4;

  TempStoreDir dir;
  auto run = [&](bool batched, const std::string& journal) {
    core::PipelineConfig c = config;
    c.probe_batch = batched;
    core::Pipeline pipeline(dataset, video, c, 424242, &pool);
    store::CandidateStore store(dir.file(journal), pipeline.store_scope());
    pipeline.attach_store(&store);
    gen::StateGenerator generator(gen::gpt4_profile(), gen::PromptStrategy{},
                                  99);
    auto result = pipeline.search_states(generator, config.baseline_arch);
    return std::make_pair(std::move(result), store.records());
  };

  auto [serial_result, serial_records] = run(false, "serial.jsonl");
  auto [batch_result, batch_records] = run(true, "batched.jsonl");

  // The probe_batch knob must not move the store scope: both runs share the
  // same funnel digest, so cached journals survive flipping it.
  ASSERT_EQ(serial_result.n_total, batch_result.n_total);
  EXPECT_EQ(serial_result.n_probes_run, batch_result.n_probes_run);
  EXPECT_EQ(serial_result.n_early_stopped, batch_result.n_early_stopped);
  EXPECT_EQ(serial_result.best_index, batch_result.best_index);
  EXPECT_EQ(serial_result.best_score, batch_result.best_score);
  ASSERT_EQ(serial_result.outcomes.size(), batch_result.outcomes.size());
  for (std::size_t i = 0; i < serial_result.outcomes.size(); ++i) {
    SCOPED_TRACE("candidate " + std::to_string(i));
    const auto& a = serial_result.outcomes[i];
    const auto& b = batch_result.outcomes[i];
    EXPECT_EQ(a.early_probed, b.early_probed);
    EXPECT_EQ(a.early_rewards, b.early_rewards);  // bitwise
    EXPECT_EQ(a.early_stopped, b.early_stopped);
    EXPECT_EQ(a.fully_trained, b.fully_trained);
    EXPECT_EQ(a.test_score, b.test_score);
  }

  // Journal contents match record for record (order may differ: the serial
  // stage journals from pool workers as they finish).
  auto by_fp = [](const std::vector<store::OutcomeRecord>& records) {
    std::map<std::string, store::OutcomeRecord> index;
    for (const auto& r : records) index[r.fingerprint.hex()] = r;
    return index;
  };
  const auto serial_map = by_fp(serial_records);
  const auto batch_map = by_fp(batch_records);
  ASSERT_EQ(serial_map.size(), batch_map.size());
  for (const auto& [fp, a] : serial_map) {
    SCOPED_TRACE("fingerprint " + fp);
    const auto it = batch_map.find(fp);
    ASSERT_NE(it, batch_map.end());
    const auto& b = it->second;
    EXPECT_EQ(a.stage, b.stage);
    EXPECT_EQ(a.early_probed, b.early_probed);
    EXPECT_EQ(a.early_rewards, b.early_rewards);  // bitwise
    EXPECT_EQ(a.compile_error, b.compile_error);
    EXPECT_EQ(a.fully_trained, b.fully_trained);
    EXPECT_EQ(a.test_score, b.test_score);
  }
}

}  // namespace
}  // namespace nada::rl

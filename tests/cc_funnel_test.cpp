// The congestion-control domain through the shared funnel: deterministic
// episodes, serial-vs-batched probe equivalence on CC candidates, and a
// tiny end-to-end CC pipeline with store caching/resume — the same
// guarantees the ABR domain pins in batch_probe_test and store_test, now
// exercised through env::TaskDomain.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "cc/cc_domain.h"
#include "cc/cc_env.h"
#include "cc/cc_state.h"
#include "core/pipeline.h"
#include "gen/state_gen.h"
#include "rl/batch_probe.h"
#include "rl/trainer.h"
#include "store/candidate_store.h"
#include "trace/generator.h"

namespace nada {
namespace {

cc::CcConfig tiny_cc_config() {
  cc::CcConfig config;
  config.steps_per_episode = 30;
  config.init_rate_mbps = 2.0;
  return config;
}

trace::Dataset cc_dataset() {
  return trace::build_dataset(trace::Environment::k4G, 0.2, 1234);
}

nn::ArchSpec tiny_arch() {
  nn::ArchSpec arch = nn::ArchSpec::pensieve();
  arch.conv_filters = 8;
  arch.rnn_hidden = 8;
  arch.scalar_hidden = 8;
  arch.merge_hidden = 16;
  return arch;
}

rl::TrainConfig tiny_train_config() {
  rl::TrainConfig config;
  config.epochs = 6;
  config.test_interval = 3;
  config.max_eval_traces = 2;
  return config;
}

std::vector<dsl::StateProgram> cc_probe_programs() {
  std::vector<dsl::StateProgram> programs;
  programs.push_back(
      dsl::StateProgram::compile(cc::default_cc_state_source()));
  programs.push_back(dsl::StateProgram::compile(
      "emit \"ack\" = ack_rate_mbps / 100.0;\n"
      "emit \"queue\" = (rtt_ms - min_rtt_ms) / 200.0;\n"
      "emit \"loss\" = loss_fraction;\n"));
  programs.push_back(dsl::StateProgram::compile(
      "emit \"rate\" = log1p(current_rate_mbps) / 6.0;\n"
      "emit \"trend\" = trend(ack_rate_mbps) / 100.0;\n"
      "emit \"rtt\" = log1p(rtt_ms) / 8.0;\n"));
  return programs;
}

// ---- deterministic episodes -------------------------------------------------

TEST(CcDeterminism, SameSeedSameEpisodeBitwise) {
  const auto dataset = cc_dataset();
  const cc::CcConfig config = tiny_cc_config();
  util::Rng rng_a(42), rng_b(42);
  cc::CcEnv env_a(dataset.train[0], config, rng_a);
  cc::CcEnv env_b(dataset.train[0], config, rng_b);
  cc::CcObservation obs_a = env_a.reset();
  cc::CcObservation obs_b = env_b.reset();
  EXPECT_EQ(obs_a.current_rate_mbps, obs_b.current_rate_mbps);
  std::size_t step = 0;
  while (!env_a.done()) {
    const auto ra = env_a.step(step % cc::rate_actions().size());
    const auto rb = env_b.step(step % cc::rate_actions().size());
    // Bitwise: the whole simulator (queue, loss, jitter draws) must be a
    // pure function of (trace, config, seed).
    EXPECT_EQ(ra.reward, rb.reward) << "step " << step;
    EXPECT_EQ(ra.rtt_ms, rb.rtt_ms) << "step " << step;
    EXPECT_EQ(ra.loss, rb.loss) << "step " << step;
    EXPECT_EQ(ra.observation.ack_rate_mbps, rb.observation.ack_rate_mbps);
    EXPECT_EQ(ra.observation.rtt_ms, rb.observation.rtt_ms);
    ++step;
  }
  EXPECT_EQ(step, config.steps_per_episode);
  EXPECT_TRUE(env_b.done());
}

TEST(CcDeterminism, ConstructionDrawsNothingAndStepBeforeResetThrows) {
  const auto dataset = cc_dataset();
  util::Rng rng_a(7);
  util::Rng rng_b(7);
  // Constructing an env must not advance the caller's stream.
  cc::CcEnv env(dataset.train[0], tiny_cc_config(), rng_a);
  EXPECT_EQ(rng_a.uniform(), rng_b.uniform());
  EXPECT_THROW((void)env.step(0), std::logic_error);
  EXPECT_FALSE(env.done());
}

TEST(CcDeterminism, DomainEpisodesReplayBitwise) {
  const auto dataset = cc_dataset();
  const cc::CcDomain domain(dataset, tiny_cc_config());
  util::Rng rng_a(99), rng_b(99);
  auto ep_a = domain.start_train_episode(env::Fidelity::kSimulation, rng_a);
  auto ep_b = domain.start_train_episode(env::Fidelity::kSimulation, rng_b);
  dsl::Bindings obs_a = ep_a->reset();
  dsl::Bindings obs_b = ep_b->reset();
  while (!ep_a->done()) {
    const auto sa = ep_a->step(2);
    const auto sb = ep_b->step(2);
    EXPECT_EQ(sa.reward, sb.reward);
    EXPECT_EQ(sa.done, sb.done);
  }
  EXPECT_TRUE(ep_b->done());
}

// ---- serial vs batched probe equivalence ------------------------------------

void expect_bitwise_equal(const rl::TrainResult& a, const rl::TrainResult& b,
                          const std::string& label) {
  ASSERT_EQ(a.failed, b.failed) << label << ": " << a.error << " vs "
                                << b.error;
  ASSERT_EQ(a.train_rewards.size(), b.train_rewards.size()) << label;
  for (std::size_t t = 0; t < a.train_rewards.size(); ++t) {
    EXPECT_EQ(a.train_rewards[t], b.train_rewards[t])
        << label << " epoch " << t;
  }
  ASSERT_EQ(a.test_scores.size(), b.test_scores.size()) << label;
  for (std::size_t c = 0; c < a.test_scores.size(); ++c) {
    EXPECT_EQ(a.test_scores[c], b.test_scores[c]) << label << " ckpt " << c;
  }
  EXPECT_EQ(a.final_score, b.final_score) << label;
}

TEST(CcBatchProbe, BitIdenticalToSerialTrainer) {
  const auto dataset = cc_dataset();
  const cc::CcDomain domain(dataset, tiny_cc_config());
  const auto programs = cc_probe_programs();
  const nn::ArchSpec arch = tiny_arch();
  rl::TrainConfig config = tiny_train_config();
  config.evaluate_checkpoints = false;  // the funnel's probe shape

  std::vector<rl::ProbeJob> jobs;
  for (std::size_t i = 0; i < 5; ++i) {
    jobs.push_back(rl::ProbeJob{&programs[i % programs.size()], &arch,
                                0xcc00 + 31 * i});
  }

  std::vector<rl::TrainResult> serial;
  for (const auto& job : jobs) {
    rl::Trainer trainer(domain, config, job.seed);
    serial.push_back(trainer.train(*job.program, *job.spec));
  }
  const rl::BatchProbeTrainer batched(domain,
                                      rl::BatchProbeConfig{config, 3});
  const auto lockstep = batched.train(jobs);
  ASSERT_EQ(lockstep.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_bitwise_equal(serial[i], lockstep[i],
                         "cc job " + std::to_string(i));
  }
}

TEST(CcBatchProbe, BitIdenticalWithCheckpointEvaluation) {
  const auto dataset = cc_dataset();
  const cc::CcDomain domain(dataset, tiny_cc_config());
  const auto programs = cc_probe_programs();
  const nn::ArchSpec arch = tiny_arch();
  const rl::TrainConfig config = tiny_train_config();

  std::vector<rl::ProbeJob> jobs;
  for (std::size_t i = 0; i < 4; ++i) {
    jobs.push_back(rl::ProbeJob{&programs[i % programs.size()], &arch,
                                0xcc10 + 17 * i});
  }
  std::vector<rl::TrainResult> serial;
  for (const auto& job : jobs) {
    rl::Trainer trainer(domain, config, job.seed);
    serial.push_back(trainer.train(*job.program, *job.spec));
  }
  const rl::BatchProbeTrainer batched(domain,
                                      rl::BatchProbeConfig{config, 2});
  const auto lockstep = batched.train(jobs);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_bitwise_equal(serial[i], lockstep[i],
                         "cc ckpt job " + std::to_string(i));
  }
}

// ---- end-to-end CC pipeline -------------------------------------------------

core::PipelineConfig tiny_cc_pipeline_config() {
  core::PipelineConfig config;
  config.num_candidates = 20;
  config.early_epochs = 4;
  config.full_train_top = 2;
  config.seeds = 2;
  config.train = tiny_train_config();
  config.train.epochs = 8;
  config.train.test_interval = 4;
  config.baseline_arch = tiny_arch();
  config.probe_block = 3;
  return config;
}

std::string fresh_store_path(const std::string& name) {
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) /
       ("nada_cc_funnel_" + name + ".jsonl"))
          .string();
  std::filesystem::remove(path);
  return path;
}

TEST(CcPipeline, FunnelRunsEndToEnd) {
  const auto dataset = cc_dataset();
  const cc::CcDomain domain(dataset, tiny_cc_config());
  util::ThreadPool pool{4};
  core::Pipeline pipeline(domain, tiny_cc_pipeline_config(), 777, &pool);
  gen::StateGenerator generator(gen::cc_state_space(), gen::gpt4_profile(),
                                gen::PromptStrategy{}, 55);
  const auto result =
      pipeline.search_states(generator, tiny_cc_pipeline_config().baseline_arch);

  EXPECT_EQ(result.n_total, 20u);
  EXPECT_GT(result.n_compiled, 0u);
  EXPECT_LE(result.n_normalized, result.n_compiled);
  EXPECT_GT(result.n_fully_trained, 0u);
  EXPECT_LE(result.n_fully_trained, 2u);
  EXPECT_TRUE(result.has_best());
  EXPECT_GT(result.best_score, -1e8);
  EXPECT_FALSE(result.original.failed);
  // CC candidate ids carry the domain token.
  for (const auto& outcome : result.outcomes) {
    EXPECT_NE(outcome.id.find("-cc-state-"), std::string::npos) << outcome.id;
  }
}

TEST(CcPipeline, StoreScopeCarriesDomainToken) {
  const auto dataset = cc_dataset();
  const cc::CcDomain cc_domain(dataset, tiny_cc_config());
  const video::Video video = video::make_test_video(video::pensieve_ladder(),
                                                    7);
  core::Pipeline cc_pipeline(cc_domain, tiny_cc_pipeline_config(), 1);
  core::Pipeline abr_pipeline(dataset, video, tiny_cc_pipeline_config(), 1);
  const auto cc_scope = cc_pipeline.store_scope();
  const auto abr_scope = abr_pipeline.store_scope();
  EXPECT_EQ(cc_scope.env, "cc-4G");
  EXPECT_EQ(abr_scope.env, "4G");
  EXPECT_NE(cc_scope.env, abr_scope.env);
  // Same trace environment, different domain: journals must never alias.
  EXPECT_FALSE(cc_scope == abr_scope);
}

TEST(CcPipeline, SecondRunServesEverythingFromCache) {
  const auto dataset = cc_dataset();
  const cc::CcDomain domain(dataset, tiny_cc_config());
  util::ThreadPool pool{4};
  const std::string path = fresh_store_path("cache");

  core::Pipeline first(domain, tiny_cc_pipeline_config(), 4242, &pool);
  store::CandidateStore store_a(path, first.store_scope());
  first.attach_store(&store_a);
  gen::StateGenerator gen_a(gen::cc_state_space(), gen::gpt4_profile(),
                            gen::PromptStrategy{}, 91);
  const auto run_a = first.search_states(gen_a, tiny_cc_pipeline_config()
                                                    .baseline_arch);
  EXPECT_GT(run_a.n_probes_run, 0u);
  EXPECT_GT(run_a.n_full_trains_run, 0u);

  core::Pipeline second(domain, tiny_cc_pipeline_config(), 4242, &pool);
  store::CandidateStore store_b(path, second.store_scope());
  second.attach_store(&store_b);
  gen::StateGenerator gen_b(gen::cc_state_space(), gen::gpt4_profile(),
                            gen::PromptStrategy{}, 91);
  const auto run_b = second.search_states(gen_b, tiny_cc_pipeline_config()
                                                     .baseline_arch);

  // Everything is served from the journal: zero duplicate training.
  EXPECT_EQ(run_b.n_probes_run, 0u);
  EXPECT_EQ(run_b.n_full_trains_run, 0u);
  EXPECT_GT(run_b.cache_hits(), 0u);
  ASSERT_EQ(run_a.outcomes.size(), run_b.outcomes.size());
  for (std::size_t i = 0; i < run_a.outcomes.size(); ++i) {
    EXPECT_EQ(run_a.outcomes[i].early_rewards,
              run_b.outcomes[i].early_rewards);
    EXPECT_EQ(run_a.outcomes[i].test_score, run_b.outcomes[i].test_score);
    EXPECT_EQ(run_a.outcomes[i].fully_trained,
              run_b.outcomes[i].fully_trained);
  }
  EXPECT_EQ(run_a.best_index, run_b.best_index);
  EXPECT_EQ(run_a.best_score, run_b.best_score);
}

TEST(CcPipeline, ResumeAfterTruncatedJournalMatchesFullRun) {
  const auto dataset = cc_dataset();
  const cc::CcDomain domain(dataset, tiny_cc_config());
  util::ThreadPool pool{4};
  const std::string full_path = fresh_store_path("resume_full");
  const std::string cut_path = fresh_store_path("resume_cut");

  // Reference run.
  core::Pipeline reference(domain, tiny_cc_pipeline_config(), 31337, &pool);
  store::CandidateStore full_store(full_path, reference.store_scope());
  reference.attach_store(&full_store);
  gen::StateGenerator gen_a(gen::cc_state_space(), gen::gpt4_profile(),
                            gen::PromptStrategy{}, 17);
  const auto want = reference.search_states(
      gen_a, tiny_cc_pipeline_config().baseline_arch);

  // Simulate an interruption: keep only the first half of the journal.
  {
    std::ifstream in(full_path);
    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);) lines.push_back(line);
    std::ofstream out(cut_path, std::ios::trunc);
    for (std::size_t i = 0; i < lines.size() / 2; ++i) {
      out << lines[i] << "\n";
    }
  }

  core::Pipeline resumed(domain, tiny_cc_pipeline_config(), 31337, &pool);
  store::CandidateStore cut_store(cut_path, resumed.store_scope());
  resumed.attach_store(&cut_store);
  gen::StateGenerator gen_b(gen::cc_state_space(), gen::gpt4_profile(),
                            gen::PromptStrategy{}, 17);
  const auto got =
      resumed.resume_states(gen_b, tiny_cc_pipeline_config().baseline_arch);

  ASSERT_EQ(want.outcomes.size(), got.outcomes.size());
  for (std::size_t i = 0; i < want.outcomes.size(); ++i) {
    EXPECT_EQ(want.outcomes[i].early_rewards, got.outcomes[i].early_rewards)
        << want.outcomes[i].id;
    EXPECT_EQ(want.outcomes[i].test_score, got.outcomes[i].test_score);
  }
  EXPECT_EQ(want.best_index, got.best_index);
  EXPECT_EQ(want.best_score, got.best_score);
}

// ---- CC generator sanity ----------------------------------------------------

TEST(CcGenerator, CandidatesUseCcVocabulary) {
  gen::StateGenerator generator(gen::cc_state_space(), gen::gpt4_profile(),
                                gen::PromptStrategy{}, 3);
  std::size_t compiled = 0;
  for (int i = 0; i < 60; ++i) {
    const auto cand = generator.generate();
    if (cand.flaw != gen::InjectedFlaw::kNone) continue;
    std::optional<dsl::StateProgram> program;
    const auto check =
        filter::compilation_check(cand.source, cc::cc_catalog(), &program);
    EXPECT_TRUE(check.passed) << cand.source << "\n" << check.reason;
    if (!check.passed) continue;
    ++compiled;
    // Clean CC candidates are well-normalized under CC fuzz ranges.
    EXPECT_TRUE(
        filter::normalization_check(*program, cc::cc_catalog()).passed)
        << cand.source;
    // ...and reference variables outside the ABR vocabulary, so the ABR
    // catalog rejects them at trial-run time.
    EXPECT_FALSE(
        filter::compilation_check(cand.source, env::abr_catalog()).passed)
        << cand.source;
  }
  EXPECT_GT(compiled, 10u);
}

TEST(CcGenerator, PlantedFlawsAreCaught) {
  gen::StateGenerator generator(gen::cc_state_space(), gen::gpt35_profile(),
                                gen::PromptStrategy{}, 4);
  std::size_t syntax_seen = 0, runtime_seen = 0, unnorm_seen = 0;
  for (int i = 0; i < 300 && (syntax_seen < 5 || runtime_seen < 5 ||
                              unnorm_seen < 5);
       ++i) {
    const auto cand = generator.generate();
    std::optional<dsl::StateProgram> program;
    const auto compile =
        filter::compilation_check(cand.source, cc::cc_catalog(), &program);
    switch (cand.flaw) {
      case gen::InjectedFlaw::kSyntax:
        ++syntax_seen;
        EXPECT_FALSE(compile.passed) << cand.source;
        break;
      case gen::InjectedFlaw::kRuntime:
        ++runtime_seen;
        EXPECT_FALSE(compile.passed) << cand.source;
        break;
      case gen::InjectedFlaw::kUnnormalized:
        ++unnorm_seen;
        if (compile.passed) {
          EXPECT_FALSE(
              filter::normalization_check(*program, cc::cc_catalog()).passed)
              << cand.source;
        }
        break;
      case gen::InjectedFlaw::kNone:
        break;
    }
  }
  EXPECT_GE(syntax_seen, 5u);
  EXPECT_GE(runtime_seen, 5u);
  EXPECT_GE(unnorm_seen, 5u);
}

}  // namespace
}  // namespace nada

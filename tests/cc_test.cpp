// Tests for the congestion-control extension (§5 future work).
#include <gtest/gtest.h>

#include <cmath>

#include "cc/cc_env.h"
#include "cc/cc_state.h"
#include "dsl/parser.h"
#include "trace/generator.h"

namespace nada::cc {
namespace {

trace::Trace constant_capacity(double mbps, double duration_s = 300.0) {
  std::vector<trace::TracePoint> pts;
  for (int t = 1; t <= static_cast<int>(duration_s); ++t) {
    pts.push_back({static_cast<double>(t), mbps * 1000.0});
  }
  return trace::Trace("cap", std::move(pts));
}

TEST(CcEnv, RejectsDegenerateConfig) {
  const auto cap = constant_capacity(10.0);
  util::Rng rng(1);
  CcConfig bad;
  bad.interval_s = 0.0;
  EXPECT_THROW(CcEnv(cap, bad, rng), std::invalid_argument);
  CcConfig bad2;
  bad2.min_rate_mbps = 10.0;
  bad2.max_rate_mbps = 1.0;
  EXPECT_THROW(CcEnv(cap, bad2, rng), std::invalid_argument);
}

TEST(CcEnv, UnderloadDeliversOfferedRate) {
  const auto cap = constant_capacity(10.0);
  util::Rng rng(2);
  CcConfig config;
  config.init_rate_mbps = 2.0;
  CcEnv env(cap, config, rng);
  env.reset();
  const auto r = env.step(2);  // x1.0 -> keep 2 Mbps
  EXPECT_NEAR(r.throughput_mbps, 2.0, 0.01);
  EXPECT_NEAR(r.loss, 0.0, 1e-12);
  EXPECT_NEAR(r.rtt_ms, config.base_rtt_ms, 2.0);
}

TEST(CcEnv, OverloadBuildsQueueThenLoses) {
  const auto cap = constant_capacity(5.0);
  util::Rng rng(3);
  CcConfig config;
  config.init_rate_mbps = 40.0;
  CcEnv env(cap, config, rng);
  env.reset();
  double max_rtt = 0.0;
  double total_loss = 0.0;
  for (int i = 0; i < 20; ++i) {
    const auto r = env.step(2);  // hold 40 Mbps over a 5 Mbps link
    max_rtt = std::max(max_rtt, r.rtt_ms);
    total_loss += r.loss;
  }
  // Queue fills to capacity, adding queuing delay; then drops appear.
  EXPECT_GT(max_rtt, config.base_rtt_ms + config.queue_capacity_ms * 0.9);
  EXPECT_GT(total_loss, 1.0);
}

TEST(CcEnv, ActionsScaleRateMultiplicatively) {
  const auto cap = constant_capacity(100.0);
  util::Rng rng(4);
  CcConfig config;
  config.init_rate_mbps = 10.0;
  CcEnv env(cap, config, rng);
  env.reset();
  env.step(4);  // x1.5
  EXPECT_NEAR(env.rate_mbps(), 15.0, 1e-9);
  env.step(0);  // x0.6
  EXPECT_NEAR(env.rate_mbps(), 9.0, 1e-9);
}

TEST(CcEnv, RateStaysWithinBounds) {
  const auto cap = constant_capacity(10.0);
  util::Rng rng(5);
  CcConfig config;
  config.min_rate_mbps = 0.5;
  config.max_rate_mbps = 20.0;
  CcEnv env(cap, config, rng);
  env.reset();
  for (int i = 0; i < 50; ++i) env.step(0);  // keep decreasing
  EXPECT_GE(env.rate_mbps(), config.min_rate_mbps);
  for (int i = 0; i < 50; ++i) env.step(4);  // keep increasing
  EXPECT_LE(env.rate_mbps(), config.max_rate_mbps);
}

TEST(CcEnv, EpisodeEndsAfterConfiguredSteps) {
  const auto cap = constant_capacity(10.0);
  util::Rng rng(6);
  CcConfig config;
  config.steps_per_episode = 25;
  CcEnv env(cap, config, rng);
  env.reset();
  std::size_t steps = 0;
  while (!env.done()) {
    env.step(2);
    ++steps;
  }
  EXPECT_EQ(steps, 25u);
  EXPECT_THROW(env.step(2), std::logic_error);
}

TEST(CcEnv, ObservationHistoriesShift) {
  const auto cap = constant_capacity(10.0);
  util::Rng rng(7);
  CcEnv env(cap, CcConfig{}, rng);
  env.reset();
  const auto r1 = env.step(4);
  const auto r2 = env.step(4);
  EXPECT_DOUBLE_EQ(r2.observation.send_rate_mbps[kCcHistoryLen - 2],
                   r1.observation.send_rate_mbps[kCcHistoryLen - 1]);
}

TEST(CcEnv, RewardPenalizesQueueAndLoss) {
  const auto cap = constant_capacity(5.0);
  util::Rng rng(8);
  CcConfig config;
  config.init_rate_mbps = 4.0;
  CcEnv fair(cap, config, rng);
  fair.reset();
  const double fair_reward = fair.step(2).reward;

  CcConfig greedy_config = config;
  greedy_config.init_rate_mbps = 60.0;
  util::Rng rng2(8);
  CcEnv greedy(cap, greedy_config, rng2);
  greedy.reset();
  double greedy_reward = 0.0;
  for (int i = 0; i < 10; ++i) greedy_reward = greedy.step(2).reward;
  // Saturating the queue with drops must score below polite utilization.
  EXPECT_GT(fair_reward, greedy_reward);
}

// ---- AIMD ---------------------------------------------------------------------

TEST(Aimd, ProbesUpWhenLossFree) {
  AimdController aimd;
  CcObservation obs;
  obs.current_rate_mbps = 2.0;
  obs.loss_fraction.assign(kCcHistoryLen, 0.0);
  const std::size_t action = aimd.act(obs);
  EXPECT_GT(rate_actions()[action], 1.0);
}

TEST(Aimd, BacksOffOnLoss) {
  AimdController aimd;
  CcObservation obs;
  obs.current_rate_mbps = 10.0;
  obs.loss_fraction.assign(kCcHistoryLen, 0.0);
  obs.loss_fraction.back() = 0.2;
  const std::size_t action = aimd.act(obs);
  EXPECT_LT(rate_actions()[action], 1.0);
}

TEST(Aimd, RejectsBadParameters) {
  EXPECT_THROW(AimdController(0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(AimdController(0.1, 1.5), std::invalid_argument);
}

TEST(Aimd, AchievesReasonableUtilizationWithoutStandingQueue) {
  util::Rng rng(9);
  const auto cap = constant_capacity(10.0);
  CcEnv env(cap, CcConfig{}, rng);
  AimdController aimd;
  CcObservation obs = env.reset();
  double throughput = 0.0;
  double rtt = 0.0;
  std::size_t n = 0;
  while (!env.done()) {
    const auto r = env.step(aimd.act(obs));
    obs = r.observation;
    // Skip the ramp-up.
    if (n > 100) {
      throughput += r.throughput_mbps;
      rtt += r.rtt_ms;
    }
    ++n;
  }
  const double steps = static_cast<double>(n - 101);
  EXPECT_GT(throughput / steps, 5.0);  // >50% of the 10 Mbps link
  // Loss-based AIMD rides a deep buffer (classic bufferbloat), but the
  // sawtooth must keep the mean RTT below the hard queue ceiling.
  EXPECT_LT(rtt / steps, 40.0 + 200.0 - 5.0);
}

// ---- DSL bindings ----------------------------------------------------------------

TEST(CcState, DefaultStateCompilesAndRuns) {
  const dsl::Program program = dsl::parse(default_cc_state_source());
  util::Rng rng(10);
  const auto cap = constant_capacity(8.0);
  CcEnv env(cap, CcConfig{}, rng);
  env.reset();
  const auto r = env.step(3);
  const dsl::StateMatrix matrix = run_cc_program(program, r.observation);
  EXPECT_GE(matrix.rows.size(), 5u);
  EXPECT_TRUE(matrix.all_finite());
  EXPECT_LT(matrix.max_abs(), 100.0);  // passes the normalization bar
}

TEST(CcState, AllInputVariablesBindable) {
  std::string src;
  for (const auto& var : cc_input_variables()) {
    src += "emit \"" + var.name + "\" = " + var.name + " * 0.001;\n";
  }
  const dsl::Program program = dsl::parse(src);
  CcObservation obs;
  obs.send_rate_mbps.assign(kCcHistoryLen, 1.0);
  obs.ack_rate_mbps.assign(kCcHistoryLen, 1.0);
  obs.rtt_ms.assign(kCcHistoryLen, 40.0);
  obs.loss_fraction.assign(kCcHistoryLen, 0.0);
  obs.min_rtt_ms = 40.0;
  obs.current_rate_mbps = 1.0;
  const auto matrix = run_cc_program(program, obs);
  EXPECT_EQ(matrix.rows.size(), cc_input_variables().size());
}

TEST(CcState, StateShapeStableAcrossSteps) {
  const dsl::Program program = dsl::parse(default_cc_state_source());
  util::Rng rng(11);
  const auto cap = constant_capacity(6.0);
  CcEnv env(cap, CcConfig{}, rng);
  CcObservation obs = env.reset();
  const auto first = run_cc_program(program, obs).row_lengths();
  for (int i = 0; i < 30; ++i) {
    const auto r = env.step(static_cast<std::size_t>(rng.uniform_int(0, 4)));
    obs = r.observation;
    EXPECT_EQ(run_cc_program(program, obs).row_lengths(), first);
  }
}

}  // namespace
}  // namespace nada::cc

// Tests for the NADA pipeline orchestration: funnel accounting, selection,
// early stopping integration, and the scaled configuration helper.
#include <gtest/gtest.h>

#include "core/pipeline.h"

namespace nada::core {
namespace {

PipelineConfig tiny_config() {
  PipelineConfig config;
  config.num_candidates = 40;
  config.early_epochs = 8;
  config.full_train_top = 3;
  config.seeds = 2;
  config.train.epochs = 24;
  config.train.test_interval = 8;
  config.train.max_eval_traces = 4;
  nn::ArchSpec arch = nn::ArchSpec::pensieve();
  arch.conv_filters = 8;
  arch.scalar_hidden = 8;
  arch.merge_hidden = 16;
  config.baseline_arch = arch;
  return config;
}

struct PipelineFixture {
  trace::Dataset dataset = trace::build_dataset(trace::Environment::kStarlink,
                                                0.2, 99);
  video::Video video = video::make_test_video(video::pensieve_ladder(), 7);
  util::ThreadPool pool{8};
};

TEST(Pipeline, StateSearchFunnelAccounting) {
  PipelineFixture fx;
  Pipeline pipeline(fx.dataset, fx.video, tiny_config(), 1234, &fx.pool);
  gen::StateGenerator generator(gen::gpt4_profile(), gen::PromptStrategy{},
                                77);
  const PipelineResult result =
      pipeline.search_states(generator, tiny_config().baseline_arch);

  EXPECT_EQ(result.n_total, 40u);
  EXPECT_EQ(result.outcomes.size(), 40u);
  EXPECT_LE(result.n_compiled, result.n_total);
  EXPECT_LE(result.n_normalized, result.n_compiled);
  EXPECT_LE(result.n_fully_trained, tiny_config().full_train_top);
  EXPECT_GT(result.n_fully_trained, 0u);
  EXPECT_TRUE(result.has_best());
  EXPECT_GT(result.best_score, -1e8);
  // The original design trained for comparison.
  EXPECT_FALSE(result.original.failed);

  // Per-outcome consistency.
  std::size_t compiled = 0, normalized = 0, trained = 0;
  for (const auto& o : result.outcomes) {
    if (o.compiled) ++compiled;
    if (o.compiled && o.normalized) ++normalized;
    if (o.fully_trained) {
      ++trained;
      EXPECT_TRUE(o.early_probed);
      EXPECT_FALSE(o.early_stopped);
      EXPECT_FALSE(o.median_curve.empty());
    }
    if (!o.compiled) {
      EXPECT_FALSE(o.compile_error.empty());
      EXPECT_FALSE(o.fully_trained);
    }
  }
  EXPECT_EQ(compiled, result.n_compiled);
  EXPECT_EQ(normalized, result.n_normalized);
  EXPECT_EQ(trained, result.n_fully_trained);
}

TEST(Pipeline, ProbedButUnselectedAreEarlyStopped) {
  PipelineFixture fx;
  PipelineConfig config = tiny_config();
  config.full_train_top = 1;
  Pipeline pipeline(fx.dataset, fx.video, config, 4321, &fx.pool);
  gen::StateGenerator generator(gen::gpt4_profile(), gen::PromptStrategy{},
                                88);
  const PipelineResult result =
      pipeline.search_states(generator, config.baseline_arch);
  // Everything probed but not fully trained must be marked early-stopped.
  std::size_t probed = 0;
  for (const auto& o : result.outcomes) {
    if (o.early_probed) ++probed;
    if (o.early_probed && !o.fully_trained) {
      EXPECT_TRUE(o.early_stopped) << o.id;
    }
  }
  EXPECT_EQ(result.n_early_stopped, probed - result.n_fully_trained);
}

TEST(Pipeline, ArchSearchRunsAndRanks) {
  PipelineFixture fx;
  PipelineConfig config = tiny_config();
  config.num_candidates = 30;
  Pipeline pipeline(fx.dataset, fx.video, config, 555, &fx.pool);
  gen::ArchGenerator generator(gen::gpt35_profile(), gen::PromptStrategy{},
                               99);
  const auto state =
      dsl::StateProgram::compile(dsl::pensieve_state_source());
  const PipelineResult result = pipeline.search_archs(generator, state);
  EXPECT_EQ(result.n_total, 30u);
  EXPECT_GT(result.n_compiled, 0u);
  EXPECT_LT(result.n_compiled, 30u);  // GPT-3.5 profile: ~75% invalid
  EXPECT_GT(result.n_fully_trained, 0u);
  EXPECT_TRUE(result.has_best());
  for (const auto& o : result.outcomes) {
    if (o.fully_trained) EXPECT_TRUE(o.arch.has_value());
  }
}

TEST(Pipeline, BaselineIsCachedAcrossSearches) {
  PipelineFixture fx;
  Pipeline pipeline(fx.dataset, fx.video, tiny_config(), 777, &fx.pool);
  const auto& first = pipeline.original_baseline();
  const auto& second = pipeline.original_baseline();
  EXPECT_EQ(&first, &second);
  EXPECT_FALSE(first.failed);
}

TEST(Pipeline, EarlyStopModelFiltersProbes) {
  PipelineFixture fx;
  PipelineConfig config = tiny_config();
  Pipeline pipeline(fx.dataset, fx.video, config, 888, &fx.pool);

  // A heuristic model with an absurdly high threshold stops everything;
  // the pipeline must then fully train nothing.
  filter::EarlyStopConfig es_config;
  filter::EarlyStopModel model(filter::EarlyStopMethod::kHeuristicMax,
                               es_config, 1);
  std::vector<filter::DesignRecord> fake_corpus;
  for (int i = 0; i < 10; ++i) {
    filter::DesignRecord r;
    r.id = std::to_string(i);
    r.final_score = i == 0 ? 1e8 : static_cast<double>(i);
    r.early_rewards = {0.0, i == 0 ? 1e9 : 1.0};
    fake_corpus.push_back(r);
  }
  model.fit(fake_corpus);  // threshold ~1e9: nothing real survives

  gen::StateGenerator generator(gen::gpt4_profile(), gen::PromptStrategy{},
                                11);
  const PipelineResult result =
      pipeline.search_states(generator, config.baseline_arch, &model);
  EXPECT_EQ(result.n_fully_trained, 0u);
  EXPECT_FALSE(result.has_best());
  EXPECT_GT(result.n_early_stopped, 0u);
}

TEST(Pipeline, RejectsDegenerateConfig) {
  PipelineFixture fx;
  PipelineConfig config = tiny_config();
  config.num_candidates = 0;
  EXPECT_THROW(Pipeline(fx.dataset, fx.video, config, 1, nullptr),
               std::invalid_argument);
  PipelineConfig config2 = tiny_config();
  config2.full_train_top = 0;
  EXPECT_THROW(Pipeline(fx.dataset, fx.video, config2, 1, nullptr),
               std::invalid_argument);
}

TEST(Pipeline, ValidatesConfigUpFrontWithDescriptiveErrors) {
  PipelineFixture fx;
  auto expect_rejected = [&](PipelineConfig config,
                             const std::string& needle) {
    try {
      Pipeline pipeline(fx.dataset, fx.video, config, 1, nullptr);
      FAIL() << "config with bad " << needle << " was accepted";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  PipelineConfig top_heavy = tiny_config();
  top_heavy.num_candidates = 4;
  top_heavy.full_train_top = 5;
  expect_rejected(top_heavy, "full_train_top");

  PipelineConfig no_seeds = tiny_config();
  no_seeds.seeds = 0;
  expect_rejected(no_seeds, "seeds");

  PipelineConfig no_block = tiny_config();
  no_block.probe_block = 0;
  expect_rejected(no_block, "probe_block");

  PipelineConfig no_probe = tiny_config();
  no_probe.early_epochs = 0;
  expect_rejected(no_probe, "early_epochs");

  // Boundary cases stay legal.
  PipelineConfig exact = tiny_config();
  exact.num_candidates = exact.full_train_top = 3;
  exact.probe_block = 1;
  EXPECT_NO_THROW(Pipeline(fx.dataset, fx.video, exact, 1, nullptr));
}

TEST(ScaledConfig, RespectsScaleFactors) {
  util::ScaleConfig scale;
  scale.gen = 0.01;
  scale.epochs = 0.01;
  scale.seeds = 0.6;
  const PipelineConfig config =
      scaled_pipeline_config(trace::Environment::kFcc, scale);
  EXPECT_EQ(config.num_candidates, 30u);  // 3000 * 0.01
  EXPECT_EQ(config.train.epochs, 400u);   // 40000 * 0.01
  EXPECT_EQ(config.seeds, 3u);            // 5 * 0.6
  EXPECT_GE(config.early_epochs, config.train.epochs / 4);
}

TEST(ScaledConfig, StarlinkKeepsSmallerBudget) {
  util::ScaleConfig scale;
  scale.epochs = 0.05;
  const PipelineConfig fcc =
      scaled_pipeline_config(trace::Environment::kFcc, scale);
  const PipelineConfig starlink =
      scaled_pipeline_config(trace::Environment::kStarlink, scale);
  EXPECT_LT(starlink.train.epochs, fcc.train.epochs);
}

TEST(ScaledConfig, PaperScaleReproducesPaperBudgets) {
  util::ScaleConfig scale;
  scale.gen = scale.epochs = scale.seeds = scale.traces = 1.0;
  const PipelineConfig config =
      scaled_pipeline_config(trace::Environment::k4G, scale);
  EXPECT_EQ(config.num_candidates, 3000u);
  EXPECT_EQ(config.train.epochs, 40000u);
  EXPECT_EQ(config.seeds, 5u);
}

}  // namespace
}  // namespace nada::core

// Tests for NadaScript: lexer, parser, interpreter semantics, builtins, and
// the Pensieve reference state program.
#include <gtest/gtest.h>

#include <cmath>

#include "dsl/interpreter.h"
#include "dsl/lexer.h"
#include "dsl/parser.h"
#include "dsl/state_program.h"
#include "env/abr_domain.h"
#include "util/rng.h"

namespace nada::dsl {
namespace {

Value eval_source_expr(const std::string& expr_text,
                       const Bindings& inputs = {}) {
  // Wrap the expression into a one-emit program and run it.
  const Program program = parse("emit \"x\" = " + expr_text + ";");
  Bindings locals;
  return eval_expr(*program.statements[0].expr, inputs, locals);
}

double eval_scalar(const std::string& expr_text, const Bindings& inputs = {}) {
  return eval_source_expr(expr_text, inputs).as_scalar();
}

std::vector<double> eval_vector(const std::string& expr_text,
                                const Bindings& inputs = {}) {
  return eval_source_expr(expr_text, inputs).as_vector();
}

// ---- lexer ------------------------------------------------------------------

TEST(Lexer, TokenizesStatement) {
  const auto tokens = tokenize("let x = 1.5; # comment\nemit \"row\" = x;");
  ASSERT_GE(tokens.size(), 10u);
  EXPECT_EQ(tokens[0].type, TokenType::kLet);
  EXPECT_EQ(tokens[1].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[1].text, "x");
  EXPECT_EQ(tokens[2].type, TokenType::kAssign);
  EXPECT_EQ(tokens[3].type, TokenType::kNumber);
  EXPECT_DOUBLE_EQ(tokens[3].number, 1.5);
  EXPECT_EQ(tokens.back().type, TokenType::kEof);
}

TEST(Lexer, ScientificNotation) {
  const auto tokens = tokenize("emit \"x\" = 1.5e6;");
  EXPECT_DOUBLE_EQ(tokens[3].number, 1.5e6);
  const auto tokens2 = tokenize("emit \"x\" = 2e-3;");
  EXPECT_DOUBLE_EQ(tokens2[3].number, 2e-3);
}

TEST(Lexer, CommentsIgnoredToEndOfLine) {
  const auto tokens = tokenize("# whole line\nlet a = 1; # trailing\n");
  EXPECT_EQ(tokens[0].type, TokenType::kLet);
}

TEST(Lexer, TracksLineNumbers) {
  const auto tokens = tokenize("let a = 1;\nlet b = 2;");
  EXPECT_EQ(tokens[0].line, 1u);
  EXPECT_EQ(tokens[5].line, 2u);
}

TEST(Lexer, TwoCharOperators) {
  const auto tokens = tokenize("a <= b >= c == d != e && f || g");
  EXPECT_EQ(tokens[1].type, TokenType::kLessEq);
  EXPECT_EQ(tokens[3].type, TokenType::kGreaterEq);
  EXPECT_EQ(tokens[5].type, TokenType::kEqEq);
  EXPECT_EQ(tokens[7].type, TokenType::kNotEq);
  EXPECT_EQ(tokens[9].type, TokenType::kAndAnd);
  EXPECT_EQ(tokens[11].type, TokenType::kOrOr);
}

TEST(Lexer, UnterminatedStringThrows) {
  EXPECT_THROW(tokenize("emit \"oops = 1;"), CompileError);
}

TEST(Lexer, StrayAmpersandThrows) {
  EXPECT_THROW(tokenize("a & b"), CompileError);
}

TEST(Lexer, UnknownCharacterThrows) {
  EXPECT_THROW(tokenize("let a = 1 @ 2;"), CompileError);
}

// ---- parser -----------------------------------------------------------------

TEST(Parser, EmptyProgramRejected) {
  EXPECT_THROW(parse(""), CompileError);
  EXPECT_THROW(parse("# only a comment"), CompileError);
}

TEST(Parser, ProgramWithoutEmitRejected) {
  EXPECT_THROW(parse("let a = 1;"), CompileError);
}

TEST(Parser, EmitRowNameRequired) {
  EXPECT_THROW(parse("emit \"\" = 1;"), CompileError);
}

struct SyntaxErrorCase {
  const char* name;
  const char* source;
};

class ParserErrorTest : public ::testing::TestWithParam<SyntaxErrorCase> {};

TEST_P(ParserErrorTest, Rejects) {
  EXPECT_THROW(parse(GetParam().source), CompileError);
}

INSTANTIATE_TEST_SUITE_P(
    SyntaxErrors, ParserErrorTest,
    ::testing::Values(
        SyntaxErrorCase{"missing_semicolon", "emit \"x\" = 1"},
        SyntaxErrorCase{"missing_assign", "emit \"x\" 1;"},
        SyntaxErrorCase{"unbalanced_paren", "emit \"x\" = (1 + 2;"},
        SyntaxErrorCase{"unbalanced_bracket", "emit \"x\" = [1, 2;"},
        SyntaxErrorCase{"stray_operator", "emit \"x\" = 1 / / 2;"},
        SyntaxErrorCase{"keyword_typo", "emti \"x\" = 1;"},
        SyntaxErrorCase{"let_without_name", "let = 4; emit \"x\" = 1;"},
        SyntaxErrorCase{"emit_number_name", "emit 42 = 1;"},
        SyntaxErrorCase{"trailing_garbage", "emit \"x\" = 1; 17"},
        SyntaxErrorCase{"ternary_missing_colon", "emit \"x\" = 1 ? 2;"},
        SyntaxErrorCase{"empty_index", "emit \"x\" = a[];"},
        SyntaxErrorCase{"double_comma", "emit \"x\" = min(1,, 2);"}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(Parser, PrecedenceMulOverAdd) {
  EXPECT_DOUBLE_EQ(eval_scalar("2 + 3 * 4"), 14.0);
  EXPECT_DOUBLE_EQ(eval_scalar("(2 + 3) * 4"), 20.0);
}

TEST(Parser, UnaryMinusBinds) {
  EXPECT_DOUBLE_EQ(eval_scalar("-2 * 3"), -6.0);
  EXPECT_DOUBLE_EQ(eval_scalar("4 - -2"), 6.0);
}

TEST(Parser, ComparisonYieldsBoolean) {
  EXPECT_DOUBLE_EQ(eval_scalar("3 < 4"), 1.0);
  EXPECT_DOUBLE_EQ(eval_scalar("3 >= 4"), 0.0);
  EXPECT_DOUBLE_EQ(eval_scalar("2 == 2"), 1.0);
  EXPECT_DOUBLE_EQ(eval_scalar("2 != 2"), 0.0);
}

TEST(Parser, LogicalOperators) {
  EXPECT_DOUBLE_EQ(eval_scalar("1 && 0"), 0.0);
  EXPECT_DOUBLE_EQ(eval_scalar("1 || 0"), 1.0);
  EXPECT_DOUBLE_EQ(eval_scalar("!0"), 1.0);
  EXPECT_DOUBLE_EQ(eval_scalar("!3"), 0.0);
}

TEST(Parser, TernarySelectsBranch) {
  EXPECT_DOUBLE_EQ(eval_scalar("1 ? 10 : 20"), 10.0);
  EXPECT_DOUBLE_EQ(eval_scalar("0 ? 10 : 20"), 20.0);
  EXPECT_DOUBLE_EQ(eval_scalar("2 < 1 ? 10 : 20"), 20.0);
}

// ---- interpreter semantics ----------------------------------------------------

TEST(Interp, LetBindingAndReuse) {
  const Program p = parse("let a = 3; let b = a * 2; emit \"x\" = a + b;");
  const StateMatrix m = run_program(p, {});
  ASSERT_EQ(m.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(m.rows[0].values[0], 9.0);
}

TEST(Interp, LetShadowing) {
  const Program p = parse("let a = 1; let a = a + 1; emit \"x\" = a;");
  const StateMatrix m = run_program(p, {});
  EXPECT_DOUBLE_EQ(m.rows[0].values[0], 2.0);
}

TEST(Interp, UndefinedVariableThrows) {
  const Program p = parse("emit \"x\" = nope;");
  EXPECT_THROW(run_program(p, {}), RuntimeError);
}

TEST(Interp, VectorScalarBroadcast) {
  const auto v = eval_vector("[1, 2, 3] * 2 + 1");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 3.0);
  EXPECT_DOUBLE_EQ(v[2], 7.0);
}

TEST(Interp, VectorVectorElementwise) {
  const auto v = eval_vector("[1, 2] + [10, 20]");
  EXPECT_DOUBLE_EQ(v[0], 11.0);
  EXPECT_DOUBLE_EQ(v[1], 22.0);
}

TEST(Interp, VectorLengthMismatchThrows) {
  EXPECT_THROW(eval_vector("[1, 2] + [1, 2, 3]"), RuntimeError);
}

TEST(Interp, DivisionByZeroThrows) {
  EXPECT_THROW(eval_scalar("1 / 0"), RuntimeError);
  EXPECT_THROW(eval_vector("[1, 2] / 0"), RuntimeError);
}

TEST(Interp, ModuloSemantics) {
  EXPECT_DOUBLE_EQ(eval_scalar("7 % 3"), 1.0);
  EXPECT_THROW(eval_scalar("7 % 0"), RuntimeError);
}

TEST(Interp, IndexingWithNegativeWrap) {
  Bindings inputs;
  inputs.emplace("v", Value(std::vector<double>{10, 20, 30}));
  EXPECT_DOUBLE_EQ(eval_scalar("v[0]", inputs), 10.0);
  EXPECT_DOUBLE_EQ(eval_scalar("v[2]", inputs), 30.0);
  EXPECT_DOUBLE_EQ(eval_scalar("v[-1]", inputs), 30.0);
  EXPECT_DOUBLE_EQ(eval_scalar("v[-3]", inputs), 10.0);
}

TEST(Interp, IndexErrors) {
  Bindings inputs;
  inputs.emplace("v", Value(std::vector<double>{10, 20, 30}));
  EXPECT_THROW(eval_scalar("v[3]", inputs), RuntimeError);
  EXPECT_THROW(eval_scalar("v[-4]", inputs), RuntimeError);
  EXPECT_THROW(eval_scalar("v[0.5]", inputs), RuntimeError);
  EXPECT_THROW(eval_scalar("3[0]", inputs), RuntimeError);
}

TEST(Interp, TernaryConditionMustBeScalar) {
  EXPECT_THROW(eval_scalar("[1, 0] ? 1 : 2"), RuntimeError);
}

TEST(Interp, EmitLimits) {
  // More than 24 rows rejected.
  std::string many;
  for (int i = 0; i < 25; ++i) {
    many += "emit \"r" + std::to_string(i) + "\" = 1;";
  }
  EXPECT_THROW(run_program(parse(many), {}), RuntimeError);
}

TEST(Interp, RowLongerThan64Rejected) {
  EXPECT_THROW(eval_source_expr("vec(65, 1.0)"), RuntimeError);
}

// ---- builtins (parameterized sweep) -------------------------------------------

struct BuiltinCase {
  const char* name;
  const char* expr;
  double expected;
};

class BuiltinScalarTest : public ::testing::TestWithParam<BuiltinCase> {};

TEST_P(BuiltinScalarTest, Evaluates) {
  EXPECT_NEAR(eval_scalar(GetParam().expr), GetParam().expected, 1e-9)
      << GetParam().expr;
}

INSTANTIATE_TEST_SUITE_P(
    Builtins, BuiltinScalarTest,
    ::testing::Values(
        BuiltinCase{"abs_neg", "abs(0.0 - 4.5)", 4.5},
        BuiltinCase{"sqrt", "sqrt(16)", 4.0},
        BuiltinCase{"log_e", "log(exp(1))", 1.0},
        BuiltinCase{"log1p_zero", "log1p(0)", 0.0},
        BuiltinCase{"exp_zero", "exp(0)", 1.0},
        BuiltinCase{"floor", "floor(2.7)", 2.0},
        BuiltinCase{"ceil", "ceil(2.1)", 3.0},
        BuiltinCase{"sign_neg", "sign(0 - 3)", -1.0},
        BuiltinCase{"sign_zero", "sign(0)", 0.0},
        BuiltinCase{"tanh_zero", "tanh(0)", 0.0},
        BuiltinCase{"sigmoid_zero", "sigmoid(0)", 0.5},
        BuiltinCase{"relu_neg", "relu(0 - 2)", 0.0},
        BuiltinCase{"relu_pos", "relu(2)", 2.0},
        BuiltinCase{"pow", "pow(2, 10)", 1024.0},
        BuiltinCase{"min", "min(3, 7)", 3.0},
        BuiltinCase{"max", "max(3, 7)", 7.0},
        BuiltinCase{"clip_low", "clip(0 - 5, 0, 1)", 0.0},
        BuiltinCase{"clip_high", "clip(5, 0, 1)", 1.0},
        BuiltinCase{"clip_mid", "clip(0.5, 0, 1)", 0.5},
        BuiltinCase{"mean", "mean([1, 2, 3, 4])", 2.5},
        BuiltinCase{"sum", "sum([1, 2, 3])", 6.0},
        BuiltinCase{"var", "var([2, 4, 4, 4, 5, 5, 7, 9])", 32.0 / 7.0},
        BuiltinCase{"std_const", "std([5, 5, 5])", 0.0},
        BuiltinCase{"median_even", "median([1, 2, 3, 4])", 2.5},
        BuiltinCase{"percentile50", "percentile([10, 20, 30], 50)", 20.0},
        BuiltinCase{"vmin", "vmin([4, 1, 9])", 1.0},
        BuiltinCase{"vmax", "vmax([4, 1, 9])", 9.0},
        BuiltinCase{"first", "first([7, 8])", 7.0},
        BuiltinCase{"last", "last([7, 8])", 8.0},
        BuiltinCase{"len", "len([7, 8, 9])", 3.0},
        BuiltinCase{"len_scalar", "len(5)", 1.0},
        BuiltinCase{"trend_line", "trend([0, 2, 4, 6])", 2.0},
        BuiltinCase{"linreg_line", "linreg_predict([1, 2, 3, 4])", 5.0},
        BuiltinCase{"ema_last_const", "ema_last([3, 3, 3], 0.5)", 3.0},
        BuiltinCase{"where_true", "where(1, 5, 9)", 5.0},
        BuiltinCase{"where_false", "where(0, 5, 9)", 9.0}),
    [](const auto& info) { return std::string(info.param.name); });

struct BuiltinErrorCase {
  const char* name;
  const char* expr;
};

class BuiltinErrorTest : public ::testing::TestWithParam<BuiltinErrorCase> {};

TEST_P(BuiltinErrorTest, Throws) {
  EXPECT_THROW(eval_source_expr(GetParam().expr), RuntimeError)
      << GetParam().expr;
}

INSTANTIATE_TEST_SUITE_P(
    BuiltinErrors, BuiltinErrorTest,
    ::testing::Values(
        BuiltinErrorCase{"sqrt_negative", "sqrt(0 - 1)"},
        BuiltinErrorCase{"log_zero", "log(0)"},
        BuiltinErrorCase{"log_negative", "log(0 - 3)"},
        BuiltinErrorCase{"log1p_domain", "log1p(0 - 2)"},
        BuiltinErrorCase{"exp_overflow", "exp(1000)"},
        BuiltinErrorCase{"pow_overflow", "pow(10, 400)"},
        BuiltinErrorCase{"pow_fractional_negative", "pow(0 - 8, 0.5)"},
        BuiltinErrorCase{"unknown_function", "frobnicate(1)"},
        BuiltinErrorCase{"bad_arity_low", "ema([1, 2])"},
        BuiltinErrorCase{"bad_arity_high", "mean([1], 2)"},
        BuiltinErrorCase{"ema_bad_alpha", "ema([1, 2], 2.0)"},
        BuiltinErrorCase{"percentile_domain", "percentile([1], 200)"},
        BuiltinErrorCase{"diff_scalar", "diff(5)"},
        BuiltinErrorCase{"tail_too_long", "tail([1, 2], 5)"},
        BuiltinErrorCase{"tail_zero", "tail([1, 2], 0)"},
        BuiltinErrorCase{"slice_inverted", "slice([1, 2, 3], 2, 1)"},
        BuiltinErrorCase{"slice_overrun", "slice([1, 2, 3], 0, 9)"},
        BuiltinErrorCase{"vec_too_long", "vec(100, 1)"},
        BuiltinErrorCase{"vec_zero", "vec(0, 1)"},
        BuiltinErrorCase{"smooth_zero_window", "smooth([1, 2], 0)"},
        BuiltinErrorCase{"minmax_constant", "normalize_minmax([2, 2, 2])"},
        BuiltinErrorCase{"zscore_constant", "zscore([1, 1, 1])"},
        BuiltinErrorCase{"rescale_bad_range", "rescale([1, 2], 1, 1)"},
        BuiltinErrorCase{"clip_inverted", "clip(1, 2, 0)"},
        BuiltinErrorCase{"empty_vector_literal", "[]"}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(Builtins, VectorTransforms) {
  EXPECT_EQ(eval_vector("diff([1, 4, 9])"),
            (std::vector<double>{3.0, 5.0}));
  EXPECT_EQ(eval_vector("cumsum([1, 2, 3])"),
            (std::vector<double>{1.0, 3.0, 6.0}));
  EXPECT_EQ(eval_vector("reverse([1, 2, 3])"),
            (std::vector<double>{3.0, 2.0, 1.0}));
  EXPECT_EQ(eval_vector("tail([1, 2, 3, 4], 2)"),
            (std::vector<double>{3.0, 4.0}));
  EXPECT_EQ(eval_vector("slice([1, 2, 3, 4], 1, 3)"),
            (std::vector<double>{2.0, 3.0}));
  EXPECT_EQ(eval_vector("concat([1], [2, 3])"),
            (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(eval_vector("vec(3, 7)"),
            (std::vector<double>{7.0, 7.0, 7.0}));
}

TEST(Builtins, SmoothMovingAverage) {
  const auto v = eval_vector("smooth([2, 4, 6, 8], 2)");
  ASSERT_EQ(v.size(), 4u);
  EXPECT_DOUBLE_EQ(v[0], 2.0);
  EXPECT_DOUBLE_EQ(v[1], 3.0);
  EXPECT_DOUBLE_EQ(v[2], 5.0);
  EXPECT_DOUBLE_EQ(v[3], 7.0);
}

TEST(Builtins, NormalizeMinmaxRange) {
  const auto v = eval_vector("normalize_minmax([2, 4, 6])");
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[1], 0.5);
  EXPECT_DOUBLE_EQ(v[2], 1.0);
}

TEST(Builtins, RescaleRange) {
  const auto v = eval_vector("rescale([0, 5, 10], 0 - 1, 1)");
  EXPECT_DOUBLE_EQ(v[0], -1.0);
  EXPECT_DOUBLE_EQ(v[1], 0.0);
  EXPECT_DOUBLE_EQ(v[2], 1.0);
}

TEST(Builtins, ZscoreProperties) {
  const auto v = eval_vector("zscore([1, 2, 3, 4, 5])");
  double mean = 0.0;
  for (double x : v) mean += x;
  EXPECT_NEAR(mean, 0.0, 1e-9);
}

TEST(Builtins, EmaSeriesMatchesUtil) {
  const auto v = eval_vector("ema([1, 2, 3], 0.5)");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[1], 1.5);
  EXPECT_DOUBLE_EQ(v[2], 2.25);
}

TEST(Builtins, WhereElementwise) {
  Bindings inputs;
  inputs.emplace("v", Value(std::vector<double>{1, 5, 2}));
  const auto out = eval_vector("where(v > 2, v, vec(3, 0))", inputs);
  EXPECT_EQ(out, (std::vector<double>{0.0, 5.0, 0.0}));
}

TEST(Builtins, RegistryExposesSignatures) {
  const auto& reg = builtins();
  EXPECT_GT(reg.size(), 30u);
  ASSERT_TRUE(reg.contains("ema"));
  EXPECT_EQ(reg.at("ema").min_args, 2u);
  EXPECT_FALSE(reg.at("ema").signature.empty());
}

// ---- StateProgram / Pensieve reference ---------------------------------------

TEST(StateProgram, PensieveCompilesAndMatchesHandComputation) {
  const StateProgram p = StateProgram::compile(pensieve_state_source());
  const env::Observation obs = env::canned_observation();
  const StateMatrix m = p.run(env::bindings_from_observation(obs));
  ASSERT_EQ(m.rows.size(), 6u);

  EXPECT_EQ(m.rows[0].name, "last_quality");
  EXPECT_NEAR(m.rows[0].values[0], 1200.0 / 4300.0, 1e-12);

  EXPECT_EQ(m.rows[1].name, "buffer_s");
  EXPECT_NEAR(m.rows[1].values[0], 14.8 / 10.0, 1e-12);

  EXPECT_EQ(m.rows[2].name, "throughput");
  ASSERT_EQ(m.rows[2].values.size(), 8u);
  EXPECT_NEAR(m.rows[2].values[0], 2.1 / 8.0, 1e-12);

  EXPECT_EQ(m.rows[3].name, "download_time");
  EXPECT_NEAR(m.rows[3].values[7], 1.6 / 10.0, 1e-12);

  EXPECT_EQ(m.rows[4].name, "next_sizes_mb");
  ASSERT_EQ(m.rows[4].values.size(), 6u);
  EXPECT_NEAR(m.rows[4].values[5], 2.15, 1e-12);

  EXPECT_EQ(m.rows[5].name, "chunks_left");
  EXPECT_NEAR(m.rows[5].values[0], 30.0 / 48.0, 1e-12);
}

TEST(StateProgram, PensieveSignatureShape) {
  const StateProgram p = StateProgram::compile(pensieve_state_source());
  const StateMatrix m = p.run(env::abr_catalog().canned());
  EXPECT_EQ(m.row_lengths(), (std::vector<std::size_t>{1, 1, 8, 8, 6, 1}));
}

TEST(StateProgram, CompileErrorPropagates) {
  EXPECT_THROW(StateProgram::compile("emit \"x\" = ;"), CompileError);
}

TEST(StateProgram, SourcePreserved) {
  const std::string src = "emit \"x\" = buffer_size_s / 10.0;\n";
  const StateProgram p = StateProgram::compile(src);
  EXPECT_EQ(p.source(), src);
}

TEST(StateProgram, AllInputVariablesBindable) {
  // A program touching every documented input variable must run.
  std::string src;
  for (const auto& var : env::input_variables()) {
    src += "emit \"" + var.name + "\" = " + var.name +
           (var.is_vector ? " * 0.001;\n" : " * 0.001;\n");
  }
  const StateProgram p = StateProgram::compile(src);
  const StateMatrix m = p.run(env::abr_catalog().canned());
  EXPECT_EQ(m.rows.size(), env::input_variables().size());
}

TEST(StateProgram, FuzzObservationWithinDocumentedRanges) {
  util::Rng rng(55);
  for (int i = 0; i < 50; ++i) {
    const env::Observation obs = env::fuzz_observation(rng);
    ASSERT_EQ(obs.throughput_mbps.size(), env::kHistoryLen);
    for (double t : obs.throughput_mbps) {
      EXPECT_GT(t, 0.0);
      EXPECT_LE(t, 400.0);
    }
    EXPECT_GE(obs.buffer_s, 0.0);
    EXPECT_LE(obs.buffer_s, 60.0);
    EXPECT_EQ(obs.next_chunk_bytes.size(), obs.ladder_kbps.size());
  }
}

TEST(StateProgram, MaxAbsComputesLargestMagnitude) {
  const StateProgram p = StateProgram::compile(
      "emit \"a\" = [1, 0 - 9, 3];\nemit \"b\" = 2;\n");
  const StateMatrix m = p.run(env::abr_catalog().canned());
  EXPECT_DOUBLE_EQ(m.max_abs(), 9.0);
  EXPECT_TRUE(m.all_finite());
}

}  // namespace
}  // namespace nada::dsl

// Differential tests for the bytecode VM (dsl/bytecode.h, dsl/vm.h).
//
// The equivalence bar is the repo's standard: the VM must be bit-identical
// to the tree-walk interpreter — same StateMatrix bits on success, same
// RuntimeError message on failure — over both generators' candidate
// streams (flawed candidates included), so that rankings and store
// journals do not change when the VM is the default engine. The
// serialize -> parse -> canonicalize -> compile -> re-execute round trip
// follows sceneri's Interpreter test shape (SNIPPETS.md §2).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "cc/cc_state.h"
#include "dsl/bytecode.h"
#include "dsl/canonical.h"
#include "dsl/parser.h"
#include "dsl/state_program.h"
#include "dsl/vm.h"
#include "env/abr_domain.h"
#include "filter/checks.h"
#include "gen/profile.h"
#include "gen/state_gen.h"
#include "rl/agent.h"
#include "util/rng.h"

namespace nada::dsl {
namespace {

// NADA_DSL_EXEC is never set under ctest, so the first test in this binary
// can pin the documented default before anything calls set_exec_mode.
TEST(ExecMode, DefaultsToVm) { EXPECT_EQ(exec_mode(), ExecMode::kVm); }

class ScopedExecMode {
 public:
  explicit ScopedExecMode(ExecMode mode) : saved_(exec_mode()) {
    set_exec_mode(mode);
  }
  ~ScopedExecMode() { set_exec_mode(saved_); }

 private:
  ExecMode saved_;
};

bool same_bits(double x, double y) {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::memcpy(&a, &x, sizeof(a));
  std::memcpy(&b, &y, sizeof(b));
  return a == b;
}

struct RunOutcome {
  bool ok = false;
  StateMatrix matrix;
  std::string error;
};

RunOutcome run_in_mode(const StateProgram& program, const Bindings& obs,
                       ExecMode mode) {
  ScopedExecMode scoped(mode);
  RunOutcome out;
  try {
    out.matrix = program.run(obs);
    out.ok = true;
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  return out;
}

void expect_matrices_identical(const StateMatrix& tree, const StateMatrix& vm,
                               const std::string& context) {
  ASSERT_EQ(tree.rows.size(), vm.rows.size()) << context;
  for (std::size_t r = 0; r < tree.rows.size(); ++r) {
    EXPECT_EQ(tree.rows[r].name, vm.rows[r].name) << context;
    EXPECT_EQ(tree.rows[r].is_vector, vm.rows[r].is_vector) << context;
    ASSERT_EQ(tree.rows[r].values.size(), vm.rows[r].values.size())
        << context << " row " << r;
    for (std::size_t i = 0; i < tree.rows[r].values.size(); ++i) {
      EXPECT_TRUE(same_bits(tree.rows[r].values[i], vm.rows[r].values[i]))
          << context << " row " << r << " elem " << i << ": "
          << tree.rows[r].values[i] << " vs " << vm.rows[r].values[i];
    }
  }
}

// Tree-walk and VM must agree on outcome AND on the exact failure message
// (failure reasons are journaled; journals must be byte-identical).
void expect_equivalent(const StateProgram& program, const Bindings& obs,
                       const std::string& context) {
  const RunOutcome tree = run_in_mode(program, obs, ExecMode::kTree);
  const RunOutcome vm = run_in_mode(program, obs, ExecMode::kVm);
  ASSERT_EQ(tree.ok, vm.ok) << context << "\ntree: " << tree.error
                            << "\nvm:   " << vm.error;
  if (tree.ok) {
    expect_matrices_identical(tree.matrix, vm.matrix, context);
  } else {
    EXPECT_EQ(tree.error, vm.error) << context;
  }
}

std::vector<Bindings> observations(const BindingCatalog& catalog,
                                   std::size_t fuzz_count,
                                   std::uint64_t seed) {
  std::vector<Bindings> obs;
  obs.push_back(catalog.canned());
  util::Rng rng(seed);
  for (std::size_t i = 0; i < fuzz_count; ++i) obs.push_back(catalog.fuzz(rng));
  return obs;
}

void differential_over_stream(const gen::StateSpace& space,
                              const BindingCatalog& catalog,
                              std::size_t count, std::uint64_t seed) {
  // gpt-3.5 rates maximize planted flaws (syntax, runtime, unnormalized).
  gen::StateGenerator generator(space, gen::gpt35_profile(),
                                gen::PromptStrategy{}, seed);
  const auto obs = observations(catalog, 3, seed ^ 0xf022ULL);
  std::size_t executed = 0;
  for (const auto& candidate : generator.generate_batch(count)) {
    StateProgram program = [&]() -> StateProgram {
      try {
        return StateProgram::compile(candidate.source, &catalog);
      } catch (const CompileError&) {
        // Syntax flaws fail in the (shared) parser before any engine runs.
        return StateProgram::compile("emit \"x\" = 0.0;");
      }
    }();
    ++executed;
    for (std::size_t i = 0; i < obs.size(); ++i) {
      expect_equivalent(program, obs[i],
                        candidate.id + " obs " + std::to_string(i));
    }
  }
  EXPECT_EQ(executed, count);
}

// ---- full-stream differentials (ABR + CC) ---------------------------------

TEST(DslVm, PensieveBitIdenticalToTreeWalk) {
  const StateProgram program =
      StateProgram::compile(pensieve_state_source(), &env::abr_catalog());
  for (const auto& obs : observations(env::abr_catalog(), 8, 0xabcdULL)) {
    expect_equivalent(program, obs, "pensieve");
  }
}

TEST(DslVm, AbrGeneratorStreamDifferential) {
  differential_over_stream(gen::abr_state_space(), env::abr_catalog(), 400,
                           0x5eedULL);
}

TEST(DslVm, CcGeneratorStreamDifferential) {
  differential_over_stream(gen::cc_state_space(), cc::cc_catalog(), 300,
                           0xccc5ULL);
}

// The CC planted-flaw tables, exercised directly: every runtime-bug and
// raw-unit variant must fail/succeed identically under both engines.
TEST(DslVm, CcPlantedFlawTablesDifferential) {
  const auto& space = gen::cc_state_space();
  const auto obs = observations(cc::cc_catalog(), 4, 0xbadf1a3ULL);
  std::vector<gen::StateVariant> flawed = space.runtime_bugs;
  flawed.insert(flawed.end(), space.unnormalized.begin(),
                space.unnormalized.end());
  ASSERT_FALSE(flawed.empty());
  for (const auto& variant : flawed) {
    const std::string source = "emit \"row\" = " + variant.expr + ";\n";
    const StateProgram program =
        StateProgram::compile(source, &cc::cc_catalog());
    for (std::size_t i = 0; i < obs.size(); ++i) {
      expect_equivalent(program, obs[i],
                        variant.tag + " obs " + std::to_string(i));
    }
  }
}

// ---- error-path parity pins ------------------------------------------------

TEST(DslVm, DeadTernaryBranchNeverFails) {
  // The tree-walk never evaluates the untaken branch, so an undefined
  // variable / unknown function / bad arity there must stay silent in the
  // VM too — the compiler lowers them to runtime throws, not rejections.
  const auto& catalog = env::abr_catalog();
  for (const char* source :
       {"emit \"x\" = 1.0 ? 2.0 : undefined_var;\n",
        "emit \"x\" = 1.0 ? 2.0 : no_such_fn(3.0);\n",
        "emit \"x\" = 1.0 ? 2.0 : mean(1.0, 2.0, 3.0);\n"}) {
    const StateProgram program = StateProgram::compile(source, &catalog);
    expect_equivalent(program, catalog.canned(), source);
    const RunOutcome vm =
        run_in_mode(program, catalog.canned(), ExecMode::kVm);
    EXPECT_TRUE(vm.ok) << source << ": " << vm.error;
  }
}

TEST(DslVm, TakenErrorBranchMessagesMatch) {
  const auto& catalog = env::abr_catalog();
  for (const char* source :
       {"emit \"x\" = 0.0 ? 2.0 : undefined_var;\n",
        "emit \"x\" = no_such_fn(3.0);\n",
        "emit \"x\" = mean(1.0, 2.0, 3.0);\n",
        "emit \"x\" = ema(throughput_mbps);\n",
        "emit \"x\" = 1.0 / 0.0;\n",
        "emit \"x\" = throughput_mbps % 0.0;\n",
        "emit \"x\" = throughput_mbps + next_chunk_sizes_bytes;\n",
        "emit \"x\" = 2.0[0];\n",
        "emit \"x\" = throughput_mbps[99];\n",
        "emit \"x\" = throughput_mbps[-99];\n",
        "emit \"x\" = throughput_mbps[0.5];\n",
        "emit \"x\" = throughput_mbps ? 1.0 : 2.0;\n",
        "emit \"x\" = [throughput_mbps, undefined_var];\n",
        "emit \"x\" = vec(0, 1.0);\n",
        "emit \"x\" = vec(65, 1.0);\n",
        "emit \"x\" = slice(throughput_mbps, 3, 2);\n"}) {
    const StateProgram program = StateProgram::compile(source, &catalog);
    const RunOutcome tree =
        run_in_mode(program, catalog.canned(), ExecMode::kTree);
    ASSERT_FALSE(tree.ok) << source;
    expect_equivalent(program, catalog.canned(), source);
  }
}

TEST(DslVm, AndOrEvaluateBothButShortCircuitTheScalarCheck) {
  const auto& catalog = env::abr_catalog();
  // lhs == 0 (&&) / lhs != 0 (||) skip the rhs *scalar check* while still
  // evaluating the rhs expression — exactly the tree-walk's semantics.
  for (const char* source :
       {"emit \"x\" = 0.0 && throughput_mbps;\n",
        "emit \"x\" = 1.0 || throughput_mbps;\n",
        "emit \"x\" = 1.0 && throughput_mbps;\n",
        "emit \"x\" = 0.0 || throughput_mbps;\n",
        "emit \"x\" = 0.0 && undefined_var;\n"}) {
    const StateProgram program = StateProgram::compile(source, &catalog);
    expect_equivalent(program, catalog.canned(), source);
  }
  // "0 && undefined_var" still throws in BOTH engines: the operand itself
  // is always evaluated, only its scalar check short-circuits.
  const StateProgram program =
      StateProgram::compile("emit \"x\" = 0.0 && undefined_var;\n", &catalog);
  EXPECT_FALSE(run_in_mode(program, catalog.canned(), ExecMode::kVm).ok);
}

// ---- serialize -> parse -> canonicalize -> compile -> re-execute ----------

// canonical_source sigils free variables with '@' (anti-capture for the
// store's fingerprints), so the canonical form is not NadaScript. Dropping
// the sigil yields a parseable serialization: '@' appears nowhere else
// outside quoted row names, and renamed bindings (v0, v1, ...) cannot
// collide because neither domain vocabulary contains vN names.
std::string reparseable_canonical(const std::string& canon) {
  std::string out;
  out.reserve(canon.size());
  bool in_string = false;
  for (char c : canon) {
    if (c == '"') in_string = !in_string;
    if (c == '@' && !in_string) continue;
    out += c;
  }
  return out;
}

void round_trip_over_stream(const gen::StateSpace& space,
                            const BindingCatalog& catalog, std::size_t count,
                            std::uint64_t seed) {
  gen::StateGenerator generator(space, gen::gpt4_profile(),
                                gen::PromptStrategy{}, seed);
  const auto obs = observations(catalog, 2, seed ^ 0x0117ULL);
  std::size_t round_tripped = 0;
  for (const auto& candidate : generator.generate_batch(count)) {
    Program ast;
    try {
      ast = parse(candidate.source);
    } catch (const CompileError&) {
      continue;  // syntax flaw: dies in the shared parser, nothing to diff
    }
    const std::string canon = canonical_source(ast);
    const StateProgram reparsed =
        StateProgram::compile(reparseable_canonical(canon), &catalog);
    // Canonicalization is idempotent across the round trip: serializing
    // the reparsed program fingerprints back to the same canonical text.
    EXPECT_EQ(canonical_source(reparsed.program()), canon) << candidate.id;
    // The canonical program is tree/VM equivalent on every observation...
    const StateProgram original =
        StateProgram::compile(candidate.source, &catalog);
    for (std::size_t i = 0; i < obs.size(); ++i) {
      expect_equivalent(reparsed, obs[i], candidate.id + " canonical");
      // ...and equivalent to the original source (error TEXT may cite
      // different line numbers since canonicalization strips comments, so
      // failures only need to agree as outcomes).
      const RunOutcome orig = run_in_mode(original, obs[i], ExecMode::kTree);
      const RunOutcome canon_vm = run_in_mode(reparsed, obs[i], ExecMode::kVm);
      ASSERT_EQ(orig.ok, canon_vm.ok)
          << candidate.id << "\noriginal: " << orig.error
          << "\ncanonical vm: " << canon_vm.error;
      if (orig.ok) {
        expect_matrices_identical(orig.matrix, canon_vm.matrix, candidate.id);
      }
    }
    ++round_tripped;
  }
  EXPECT_GT(round_tripped, count / 2);
}

TEST(DslVm, RoundTripAbrStream) {
  round_trip_over_stream(gen::abr_state_space(), env::abr_catalog(), 200,
                         0x2024ULL);
}

TEST(DslVm, RoundTripCcStream) {
  round_trip_over_stream(gen::cc_state_space(), cc::cc_catalog(), 150,
                         0x2025ULL);
}

// ---- compiled metadata -----------------------------------------------------

TEST(DslVm, InputsCarryCatalogSlots) {
  const auto& catalog = env::abr_catalog();
  const StateProgram program =
      StateProgram::compile(pensieve_state_source(), &catalog);
  const CompiledProgram& code = program.code();
  ASSERT_FALSE(code.inputs.empty());
  for (const auto& input : code.inputs) {
    const auto slot = catalog.slot_index(input.name);
    ASSERT_TRUE(slot.has_value()) << input.name;
    EXPECT_EQ(input.catalog_slot, static_cast<int>(*slot)) << input.name;
  }
  // Out-of-vocabulary names stay compilable (they fail at run time, like
  // the tree-walk) and are marked slot -1.
  const StateProgram unknown =
      StateProgram::compile("emit \"x\" = 1.0 ? 2.0 : nope;\n", &catalog);
  ASSERT_EQ(unknown.code().inputs.size(), 1u);
  EXPECT_EQ(unknown.code().inputs[0].name, "nope");
  EXPECT_EQ(unknown.code().inputs[0].catalog_slot, -1);
}

TEST(DslVm, ConstantsArePooled) {
  // 10.0 appears twice and 2.0 once: two pooled constants, each bound to
  // one register.
  const StateProgram program = StateProgram::compile(
      "emit \"a\" = buffer_size_s / 10.0;\n"
      "emit \"b\" = download_time_s / 10.0;\n"
      "emit \"c\" = 2.0;\n");
  EXPECT_EQ(program.code().constants.size(), 2u);
  EXPECT_EQ(program.code().emit_names.size(), 3u);
}

TEST(DslVm, EmitRowCountIsStaticMetadata) {
  const StateProgram program =
      StateProgram::compile(pensieve_state_source());
  EXPECT_EQ(program.code().emit_names.size(), 6u);
  EXPECT_EQ(program.code().emit_names.front(), "last_quality");
}

// ---- signature cache (agent construction without a trial run) -------------

TEST(DslVm, CompilationCheckPrimesSignatureCache) {
  const auto& catalog = env::abr_catalog();
  std::optional<StateProgram> program;
  const auto check =
      filter::compilation_check(pensieve_state_source(), catalog, &program);
  ASSERT_TRUE(check.passed) << check.reason;
  const nn::StateSignature sig = rl::derive_signature(*program, catalog);
  const auto expected = program->run(catalog.canned()).row_lengths();
  EXPECT_EQ(sig.row_lengths, expected);
}

TEST(DslVm, PrimedSignatureIsServedWithoutExecution) {
  // Prime with sentinel lengths: derive_signature must return them
  // verbatim, proving the lookup path performs no program run.
  const auto& catalog = env::abr_catalog();
  const StateProgram program = StateProgram::compile(pensieve_state_source());
  program.prime_signature(catalog, {9, 9, 9});
  EXPECT_EQ(rl::derive_signature(program, catalog).row_lengths,
            (std::vector<std::size_t>{9, 9, 9}));
  // A different catalog misses the cache and recomputes honestly: the CC
  // vocabulary lacks pensieve's inputs, so an actual trial run must throw.
  EXPECT_THROW((void)program.signature_row_lengths(cc::cc_catalog()),
               RuntimeError);
}

// ---- execution budget ------------------------------------------------------

// Doubles a 64-wide vector per statement: cumulative cost passes any
// reasonable budget long before the final statement, so the budget also
// caps peak memory.
std::string doubling_source(std::size_t doublings) {
  std::string source = "let x0 = vec(64, 1.0);\n";
  for (std::size_t i = 1; i <= doublings; ++i) {
    source += "let x" + std::to_string(i) + " = concat(x" +
              std::to_string(i - 1) + ", x" + std::to_string(i - 1) + ");\n";
  }
  source += "emit \"r\" = sum(x" + std::to_string(doublings) + ");\n";
  return source;
}

TEST(DslVm, BudgetStopsPathologicalPrograms) {
  ScopedExecMode scoped(ExecMode::kVm);
  const auto check = filter::compilation_check(doubling_source(24),
                                               env::abr_catalog());
  ASSERT_FALSE(check.passed);
  EXPECT_NE(check.reason.find("instruction budget exceeded"),
            std::string::npos)
      << check.reason;
  EXPECT_NE(check.reason.find("NADA_DSL_BUDGET"), std::string::npos)
      << check.reason;
  EXPECT_EQ(check.exceeded_budget, instruction_budget());
}

TEST(DslVm, BudgetErrorIsARuntimeError) {
  // Every existing catch treats budget exhaustion as a candidate failure.
  const StateProgram program = StateProgram::compile(doubling_source(24));
  ScopedExecMode scoped(ExecMode::kVm);
  EXPECT_THROW((void)program.run(env::abr_catalog().canned()), RuntimeError);
}

TEST(DslVm, PerVmBudgetOverride) {
  const StateProgram program = StateProgram::compile(
      "let x = vec(64, 1.0);\nemit \"r\" = sum(concat(x, x));\n");
  Vm vm;
  vm.set_budget(10);
  EXPECT_THROW((void)vm.run(program.code(), env::abr_catalog().canned()),
               BudgetError);
  vm.set_budget(0);  // back to the process-wide default
  const StateMatrix& matrix =
      vm.run(program.code(), env::abr_catalog().canned());
  EXPECT_EQ(matrix.rows.size(), 1u);
  EXPECT_GT(vm.stats().runs, 0u);
  EXPECT_GT(vm.stats().instructions, 0u);
  EXPECT_GT(vm.stats().cost_units, vm.stats().instructions);
}

TEST(DslVm, WellBehavedProgramsCostFarBelowBudget) {
  Vm vm;
  const StateProgram program =
      StateProgram::compile(pensieve_state_source(), &env::abr_catalog());
  (void)vm.run(program.code(), env::abr_catalog().canned());
  EXPECT_LT(vm.stats().cost_units, instruction_budget() / 1000);
}

// ---- checks + agent through the VM ----------------------------------------

TEST(DslVm, CheckVerdictsAndReasonsMatchTreeWalk) {
  // The journal-relevant content of the pre-checks — pass/fail verdict and
  // reason string — must be identical under both engines across a flawed
  // stream (this is the in-process pin behind the dsl-vm-smoke CI job).
  gen::StateGenerator generator(gen::abr_state_space(), gen::gpt35_profile(),
                                gen::PromptStrategy{}, 7);
  for (const auto& candidate : generator.generate_batch(250)) {
    ScopedExecMode tree_mode(ExecMode::kTree);
    std::optional<StateProgram> tree_program;
    const auto tree_check = filter::compilation_check(
        candidate.source, env::abr_catalog(), &tree_program);
    std::optional<filter::CheckResult> tree_norm;
    if (tree_check.passed) {
      tree_norm =
          filter::normalization_check(*tree_program, env::abr_catalog());
    }
    set_exec_mode(ExecMode::kVm);
    std::optional<StateProgram> vm_program;
    const auto vm_check = filter::compilation_check(
        candidate.source, env::abr_catalog(), &vm_program);
    ASSERT_EQ(tree_check.passed, vm_check.passed) << candidate.id;
    EXPECT_EQ(tree_check.reason, vm_check.reason) << candidate.id;
    if (tree_norm.has_value()) {
      const auto vm_norm =
          filter::normalization_check(*vm_program, env::abr_catalog());
      ASSERT_EQ(tree_norm->passed, vm_norm.passed) << candidate.id;
      EXPECT_EQ(tree_norm->reason, vm_norm.reason) << candidate.id;
    }
  }
}

TEST(DslVm, AgentDecidesIdenticallyAndCountsExecution) {
  const auto& catalog = env::abr_catalog();
  std::optional<StateProgram> program;
  ASSERT_TRUE(filter::compilation_check(pensieve_state_source(), catalog,
                                        &program)
                  .passed);
  const nn::ArchSpec spec = nn::ArchSpec::pensieve();
  const auto decide_all = [&](ExecMode mode) {
    ScopedExecMode scoped(mode);
    util::Rng init(0x11ULL);
    rl::PolicyAgent agent(*program, spec, 6, catalog, init);
    std::vector<std::size_t> actions;
    std::vector<double> values;
    util::Rng rng(0x22ULL);
    util::Rng fuzz(0x33ULL);
    for (int i = 0; i < 16; ++i) {
      const auto d = agent.decide(catalog.fuzz(fuzz), true, rng);
      actions.push_back(d.action);
      values.push_back(d.value);
    }
    EXPECT_EQ(agent.exec_runs(), 16u);
    if (mode == ExecMode::kVm) {
      EXPECT_EQ(agent.exec_stats().runs, 16u);
      EXPECT_GT(agent.exec_stats().instructions, 0u);
    } else {
      EXPECT_EQ(agent.exec_stats().runs, 0u);  // tree mode: Vm untouched
    }
    return std::make_pair(actions, values);
  };
  const auto tree = decide_all(ExecMode::kTree);
  const auto vm = decide_all(ExecMode::kVm);
  EXPECT_EQ(tree.first, vm.first);
  for (std::size_t i = 0; i < tree.second.size(); ++i) {
    EXPECT_TRUE(same_bits(tree.second[i], vm.second[i])) << i;
  }
}

}  // namespace
}  // namespace nada::dsl

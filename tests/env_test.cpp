// Tests for the streaming environment: simulator mechanics, emulation
// fidelity differences, and the RL observation interface.
#include <gtest/gtest.h>

#include <cmath>

#include "env/abr_env.h"
#include "env/session.h"
#include "trace/trace.h"
#include "util/rng.h"
#include "video/video.h"

namespace nada::env {
namespace {

trace::Trace constant_trace(double mbps, double duration_s = 600.0) {
  std::vector<trace::TracePoint> pts;
  for (int t = 1; t <= static_cast<int>(duration_s); ++t) {
    pts.push_back({static_cast<double>(t), mbps * 1000.0});
  }
  return trace::Trace("const", std::move(pts));
}

video::Video test_video() {
  return video::make_test_video(video::pensieve_ladder(), 1234);
}

// ---- StreamingSession --------------------------------------------------------

TEST(StreamingSession, DownloadTimeMatchesBandwidthMath) {
  const auto tr = constant_trace(8.0);  // 8 Mbps => 1 MB/s
  const auto vid = test_video();
  StreamingSession session(tr, vid);
  const double bytes = vid.chunk_bytes(0, 2);
  const auto result = session.download_chunk(2);
  const SimConfig config;
  const double expected =
      config.link_rtt_s + bytes / config.packet_payload_ratio / 1e6;
  EXPECT_NEAR(result.download_time_s, expected, 1e-6);
  EXPECT_DOUBLE_EQ(result.chunk_bytes, bytes);
}

TEST(StreamingSession, FirstChunkAlwaysRebuffers) {
  const auto tr = constant_trace(3.0);
  const auto vid = test_video();
  StreamingSession session(tr, vid);
  const auto result = session.download_chunk(0);
  // Empty buffer: the whole download time is a stall.
  EXPECT_NEAR(result.rebuffer_s, result.download_time_s, 1e-9);
  EXPECT_NEAR(result.buffer_s, vid.chunk_len_s(), 1e-9);
}

TEST(StreamingSession, BufferGrowsWhenLinkIsFast) {
  const auto tr = constant_trace(50.0);
  const auto vid = test_video();
  StreamingSession session(tr, vid);
  double last_buffer = 0.0;
  for (int i = 0; i < 5; ++i) {
    const auto result = session.download_chunk(0);
    EXPECT_GE(result.buffer_s, last_buffer);
    last_buffer = result.buffer_s;
  }
  EXPECT_GT(last_buffer, 10.0);
}

TEST(StreamingSession, SlowLinkCausesRepeatedStalls) {
  const auto tr = constant_trace(0.2);  // far below the lowest level
  const auto vid = test_video();
  StreamingSession session(tr, vid);
  double stalls = 0.0;
  for (int i = 0; i < 5; ++i) stalls += session.download_chunk(5).rebuffer_s;
  EXPECT_GT(stalls, 30.0);
}

TEST(StreamingSession, BufferCapTriggersSleep) {
  const auto tr = constant_trace(100.0);
  const auto vid = test_video();
  StreamingSession session(tr, vid);
  bool slept = false;
  while (!session.finished()) {
    if (session.download_chunk(0).sleep_s > 0.0) {
      slept = true;
      EXPECT_LE(session.buffer_s(), 60.0 + 1e-9);
    }
  }
  EXPECT_TRUE(slept);
}

TEST(StreamingSession, FinishesAfterAllChunks) {
  const auto tr = constant_trace(10.0);
  const auto vid = test_video();
  StreamingSession session(tr, vid);
  std::size_t downloads = 0;
  while (!session.finished()) {
    session.download_chunk(0);
    ++downloads;
  }
  EXPECT_EQ(downloads, vid.num_chunks());
  EXPECT_THROW(session.download_chunk(0), std::logic_error);
}

TEST(StreamingSession, InvalidLevelThrows) {
  const auto tr = constant_trace(10.0);
  const auto vid = test_video();
  StreamingSession session(tr, vid);
  EXPECT_THROW(session.download_chunk(6), std::out_of_range);
}

TEST(StreamingSession, ThroughputReflectsLink) {
  const auto tr = constant_trace(8.0);
  const auto vid = test_video();
  StreamingSession session(tr, vid);
  const auto result = session.download_chunk(4);
  // Measured throughput is slightly below the link rate due to RTT and
  // header overhead.
  EXPECT_LT(result.throughput_mbps, 8.0);
  EXPECT_GT(result.throughput_mbps, 5.0);
}

TEST(StreamingSession, VariableTraceSlowsDownload) {
  // Second half of the trace is 10x slower; a session starting there takes
  // longer for the same chunk.
  std::vector<trace::TracePoint> pts;
  for (int t = 1; t <= 120; ++t) {
    pts.push_back({static_cast<double>(t), t <= 60 ? 20000.0 : 2000.0});
  }
  const trace::Trace tr("twophase", std::move(pts));
  const auto vid = test_video();
  StreamingSession fast(tr, vid, SimConfig{}, 0.0);
  StreamingSession slow(tr, vid, SimConfig{}, 61.0);
  const double fast_time = fast.download_chunk(5).download_time_s;
  const double slow_time = slow.download_chunk(5).download_time_s;
  EXPECT_GT(slow_time, fast_time * 3.0);
}

// ---- EmuSession ---------------------------------------------------------------

TEST(EmuSession, SlowerThanSimulatorForSmallChunks) {
  // Slow start + request overhead dominate small transfers.
  const auto tr = constant_trace(20.0);
  const auto vid = test_video();
  util::Rng rng(5);
  StreamingSession sim(tr, vid);
  EmuSession emu(tr, vid, rng);
  const double sim_time = sim.download_chunk(0).download_time_s;
  const double emu_time = emu.download_chunk(0).download_time_s;
  EXPECT_GT(emu_time, sim_time);
}

TEST(EmuSession, ApproachesLinkRateForLargeChunks) {
  const auto tr = constant_trace(10.0);
  const auto vid = video::make_test_video(video::youtube_ladder(), 99);
  util::Rng rng(6);
  EmuSession emu(tr, vid, rng);
  // A 53 Mbps chunk (~26 MB) over a 10 Mbps link: slow start amortizes.
  const auto result = emu.download_chunk(5);
  EXPECT_GT(result.throughput_mbps, 6.0);
  EXPECT_LT(result.throughput_mbps, 10.5);
}

TEST(EmuSession, JitterMakesRunsDiffer) {
  const auto tr = constant_trace(5.0);
  const auto vid = test_video();
  util::Rng rng1(7);
  util::Rng rng2(8);
  EmuSession a(tr, vid, rng1);
  EmuSession b(tr, vid, rng2);
  const double ta = a.download_chunk(3).download_time_s;
  const double tb = b.download_chunk(3).download_time_s;
  EXPECT_NE(ta, tb);
}

// ---- AbrEnv -------------------------------------------------------------------

TEST(AbrEnv, InitialObservationIsZeroHistory) {
  const auto tr = constant_trace(5.0);
  const auto vid = test_video();
  util::Rng rng(9);
  AbrEnv env(tr, vid, Fidelity::kSimulation, rng);
  const Observation obs = env.reset();
  ASSERT_EQ(obs.throughput_mbps.size(), kHistoryLen);
  for (double v : obs.throughput_mbps) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_DOUBLE_EQ(obs.buffer_s, 0.0);
  EXPECT_DOUBLE_EQ(obs.chunks_remaining, 48.0);
  EXPECT_DOUBLE_EQ(obs.last_bitrate_kbps, 300.0);
  ASSERT_EQ(obs.next_chunk_bytes.size(), 6u);
  EXPECT_GT(obs.next_chunk_bytes[0], 0.0);
}

TEST(AbrEnv, HistoriesShiftAfterSteps) {
  const auto tr = constant_trace(5.0);
  const auto vid = test_video();
  util::Rng rng(10);
  AbrEnv env(tr, vid, Fidelity::kSimulation, rng);
  env.reset();
  const auto s1 = env.step(2);
  EXPECT_GT(s1.observation.throughput_mbps.back(), 0.0);
  EXPECT_DOUBLE_EQ(s1.observation.last_bitrate_kbps, 1200.0);
  const auto s2 = env.step(3);
  // Oldest-first: the previous sample moved one slot left.
  EXPECT_DOUBLE_EQ(
      s2.observation.throughput_mbps[kHistoryLen - 2],
      s1.observation.throughput_mbps[kHistoryLen - 1]);
  EXPECT_DOUBLE_EQ(s2.observation.chunks_remaining, 46.0);
}

TEST(AbrEnv, EpisodeEndsAfterAllChunks) {
  const auto tr = constant_trace(5.0);
  const auto vid = test_video();
  util::Rng rng(11);
  AbrEnv env(tr, vid, Fidelity::kSimulation, rng);
  env.reset();
  std::size_t steps = 0;
  while (!env.done()) {
    const auto r = env.step(0);
    ++steps;
    if (steps == vid.num_chunks()) EXPECT_TRUE(r.done);
  }
  EXPECT_EQ(steps, vid.num_chunks());
  EXPECT_THROW(env.step(0), std::logic_error);
}

TEST(AbrEnv, RewardMatchesQoEDefinition) {
  const auto tr = constant_trace(50.0);  // fast link: no rebuffering after
  const auto vid = test_video();
  util::Rng rng(12);
  AbrEnv env(tr, vid, Fidelity::kSimulation, rng);
  env.reset();
  env.step(2);
  // Steady selection at level 2 with no stall: reward == 1.2 Mbps.
  const auto r = env.step(2);
  EXPECT_NEAR(r.reward, 1.2, 0.05);
}

TEST(AbrEnv, BufferHistoryTracksBuffer) {
  const auto tr = constant_trace(20.0);
  const auto vid = test_video();
  util::Rng rng(13);
  AbrEnv env(tr, vid, Fidelity::kSimulation, rng);
  env.reset();
  const auto s1 = env.step(0);
  EXPECT_DOUBLE_EQ(s1.observation.buffer_s_history.back(),
                   s1.observation.buffer_s);
}

TEST(AbrEnv, EmulationFidelityProducesLowerScores) {
  // Same trace, same policy: emulation's overheads reduce attainable QoE.
  const auto tr = constant_trace(4.0);
  const auto vid = test_video();
  util::Rng rng(14);

  auto total_reward = [&](Fidelity f) {
    util::Rng local(99);
    AbrEnv env(tr, vid, f, local);
    env.reset();
    double total = 0.0;
    while (!env.done()) total += env.step(3).reward;
    return total;
  };
  EXPECT_LT(total_reward(Fidelity::kEmulation),
            total_reward(Fidelity::kSimulation));
}

TEST(AbrEnv, ResetStartsFreshEpisode) {
  const auto tr = constant_trace(5.0);
  const auto vid = test_video();
  util::Rng rng(15);
  AbrEnv env(tr, vid, Fidelity::kSimulation, rng);
  env.reset();
  env.step(0);
  env.step(0);
  const Observation obs = env.reset();
  EXPECT_DOUBLE_EQ(obs.chunks_remaining, 48.0);
  EXPECT_DOUBLE_EQ(obs.buffer_s, 0.0);
  for (double v : obs.throughput_mbps) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(AbrEnv, ConstructionConsumesNoRandomness) {
  // The seed stream must be a pure function of the episodes actually run:
  // building an env (without resetting it) leaves the RNG untouched, so a
  // caller that constructs one env per episode and a caller that reuses one
  // env see identical draws. This is the invariant the batched/serial
  // probe equivalence rests on.
  const auto tr = constant_trace(3.0);
  const auto vid = test_video();
  util::Rng rng_a(77);
  util::Rng rng_b(77);
  AbrEnv env(tr, vid, Fidelity::kSimulation, rng_a);
  EXPECT_EQ(rng_a.uniform(), rng_b.uniform());
}

TEST(AbrEnv, UseBeforeResetThrows) {
  const auto tr = constant_trace(3.0);
  const auto vid = test_video();
  util::Rng rng(16);
  AbrEnv env(tr, vid, Fidelity::kSimulation, rng);
  EXPECT_THROW(env.step(0), std::logic_error);
  EXPECT_THROW((void)env.done(), std::logic_error);
  EXPECT_NO_THROW(env.reset());
  EXPECT_FALSE(env.done());
}

TEST(AbrEnv, FreshAndReusedEnvSeeSameEpisodes) {
  const auto tr = constant_trace(2.0);
  const auto vid = test_video();
  util::Rng fresh_rng(31);
  util::Rng reused_rng(31);
  AbrEnv reused(tr, vid, Fidelity::kSimulation, reused_rng);
  for (int episode = 0; episode < 3; ++episode) {
    AbrEnv fresh(tr, vid, Fidelity::kSimulation, fresh_rng);
    Observation a = fresh.reset();
    Observation b = reused.reset();
    while (!fresh.done()) {
      const auto sa = fresh.step(2);
      const auto sb = reused.step(2);
      EXPECT_EQ(sa.reward, sb.reward);
      EXPECT_EQ(sa.observation.throughput_mbps,
                sb.observation.throughput_mbps);
    }
    EXPECT_TRUE(reused.done());
  }
}

// ---- stall-deadline truncation ------------------------------------------------

TEST(StreamingSession, TruncatedDownloadReportsDeliveredBytes) {
  // 1 kbps forever: a top-level chunk (~2 MB) cannot finish within the
  // 3600 s stall deadline. The session must say so instead of reporting a
  // completed download at a fictitious throughput.
  const auto tr = constant_trace(0.001);
  const auto vid = test_video();
  StreamingSession session(tr, vid);
  const DownloadResult dl = session.download_chunk(5);
  EXPECT_TRUE(dl.truncated);
  EXPECT_LT(dl.delivered_bytes, dl.chunk_bytes);
  EXPECT_GT(dl.delivered_bytes, 0.0);
  // Honest throughput: delivered bytes over elapsed time, around 1 kbps —
  // not chunk_bytes over elapsed (which would claim ~5x more).
  EXPECT_LT(dl.throughput_mbps, 0.01);
  EXPECT_GE(dl.download_time_s, StreamingSession::kStallDeadlineS);
}

TEST(StreamingSession, CompletedDownloadNotTruncated) {
  const auto tr = constant_trace(5.0);
  const auto vid = test_video();
  StreamingSession session(tr, vid);
  const DownloadResult dl = session.download_chunk(2);
  EXPECT_FALSE(dl.truncated);
  EXPECT_DOUBLE_EQ(dl.delivered_bytes, dl.chunk_bytes);
}

TEST(EmuSession, TruncatedDownloadReportsDeliveredBytes) {
  const auto tr = constant_trace(0.001);
  const auto vid = test_video();
  util::Rng rng(5);
  EmuSession session(tr, vid, rng);
  const DownloadResult dl = session.download_chunk(5);
  EXPECT_TRUE(dl.truncated);
  EXPECT_LT(dl.delivered_bytes, dl.chunk_bytes);
  EXPECT_LT(dl.throughput_mbps, 0.01);
}

TEST(AbrEnv, TruncatedStepSurfacedAndRewardCapped) {
  const auto tr = constant_trace(0.001);
  const auto vid = test_video();
  util::Rng rng(17);
  AbrEnv env(tr, vid, Fidelity::kSimulation, rng);
  env.reset();
  const StepResult step = env.step(5);
  EXPECT_TRUE(step.truncated);
  EXPECT_LE(step.reward, 0.0);
}

TEST(AbrEnv, NormalStepNotTruncated) {
  const auto tr = constant_trace(5.0);
  const auto vid = test_video();
  util::Rng rng(18);
  AbrEnv env(tr, vid, Fidelity::kSimulation, rng);
  env.reset();
  EXPECT_FALSE(env.step(2).truncated);
}

}  // namespace
}  // namespace nada::env

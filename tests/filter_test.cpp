// Tests for the filtering stack: pre-checks and the early-stopping models.
#include <gtest/gtest.h>

#include <cmath>

#include "env/abr_domain.h"
#include "filter/checks.h"
#include "filter/earlystop.h"
#include "util/rng.h"

namespace nada::filter {
namespace {

// ---- compilation check ---------------------------------------------------------

TEST(CompilationCheck, AcceptsPensieveState) {
  std::optional<dsl::StateProgram> program;
  const auto result =
      compilation_check(dsl::pensieve_state_source(), env::abr_catalog(), &program);
  EXPECT_TRUE(result.passed) << result.reason;
  EXPECT_TRUE(program.has_value());
}

TEST(CompilationCheck, RejectsSyntaxError) {
  const auto result = compilation_check("emit \"x\" = 1 +;", env::abr_catalog());
  EXPECT_FALSE(result.passed);
  EXPECT_FALSE(result.reason.empty());
}

TEST(CompilationCheck, RejectsUndefinedVariable) {
  const auto result = compilation_check("emit \"x\" = undefined_thing;", env::abr_catalog());
  EXPECT_FALSE(result.passed);
  EXPECT_NE(result.reason.find("undefined"), std::string::npos);
}

TEST(CompilationCheck, RejectsRuntimeError) {
  EXPECT_FALSE(compilation_check("emit \"x\" = throughput_mbps[42];", env::abr_catalog()).passed);
  EXPECT_FALSE(compilation_check("emit \"x\" = 1.0 / 0.0;", env::abr_catalog()).passed);
  EXPECT_FALSE(compilation_check("emit \"x\" = sqrt(0.0 - 1.0);", env::abr_catalog()).passed);
}

TEST(CompilationCheck, NullOutIsAccepted) {
  EXPECT_TRUE(compilation_check(dsl::pensieve_state_source(), env::abr_catalog(), nullptr).passed);
}

// ---- normalization check --------------------------------------------------------

dsl::StateProgram compile_or_die(const std::string& source) {
  std::optional<dsl::StateProgram> program;
  const auto result = compilation_check(source, env::abr_catalog(), &program);
  if (!result.passed) throw std::runtime_error(result.reason);
  return *std::move(program);
}

TEST(NormalizationCheck, AcceptsPensieveState) {
  const auto program = compile_or_die(dsl::pensieve_state_source());
  EXPECT_TRUE(normalization_check(program, env::abr_catalog()).passed);
}

TEST(NormalizationCheck, RejectsRawBytes) {
  const auto program =
      compile_or_die("emit \"sizes\" = next_chunk_sizes_bytes;");
  const auto result = normalization_check(program, env::abr_catalog());
  EXPECT_FALSE(result.passed);
  EXPECT_NE(result.reason.find("sizes"), std::string::npos);
}

TEST(NormalizationCheck, RejectsRawKbpsThroughput) {
  const auto program =
      compile_or_die("emit \"tput\" = throughput_mbps * 1000.0;");
  EXPECT_FALSE(normalization_check(program, env::abr_catalog()).passed);
}

TEST(NormalizationCheck, ThresholdIsConfigurable) {
  // Buffer history peaks at 60 s: fails T=30, passes T=100.
  const auto program =
      compile_or_die("emit \"buf\" = buffer_size_s_history;");
  EXPECT_FALSE(normalization_check(program, env::abr_catalog(), 30.0).passed);
  EXPECT_TRUE(normalization_check(program, env::abr_catalog(), 100.0).passed);
}

TEST(NormalizationCheck, CatchesFuzzOnlyRuntimeErrors) {
  // normalize_minmax throws only when the fuzz vector is constant — but a
  // fragile division CAN pass the canned trial and explode under fuzz:
  // 1 / (buffer - 14.8) is fine on fuzz observations almost surely but the
  // canned observation has buffer == 14.8. Reverse case: division by
  // (total_chunks - chunks_remaining) is fine canned (18) but fuzz can make
  // chunks_remaining ~ total_chunks... use a deterministic case instead:
  // log(throughput - 5) fails whenever fuzz draws a sample below 5 Mbps.
  const auto program = compile_or_die(
      "emit \"x\" = log(vmin(throughput_mbps) - 0.01);");
  // vmin is tiny (>= 0.05); log of near-zero is large-negative but finite;
  // log of negative throws when vmin < 0.01 — that never happens. So this
  // one passes; assert that, then check a genuinely fragile program.
  EXPECT_TRUE(normalization_check(program, env::abr_catalog()).passed);

  const auto fragile = compile_or_die(
      "emit \"x\" = log(vmin(throughput_mbps) - 1.0);");
  // Fuzz draws throughput in [0.05, cap]; vmin < 1.0 is common -> throws.
  const auto result = normalization_check(fragile, env::abr_catalog());
  EXPECT_FALSE(result.passed);
  EXPECT_NE(result.reason.find("raised"), std::string::npos);
}

TEST(NormalizationCheck, InvalidThresholdFails) {
  const auto program = compile_or_die(dsl::pensieve_state_source());
  EXPECT_FALSE(normalization_check(program, env::abr_catalog(), 0.0).passed);
}

TEST(NormalizationCheck, DeterministicForSeed) {
  const auto program =
      compile_or_die("emit \"x\" = throughput_mbps / 3.9;");
  const auto a = normalization_check(program, env::abr_catalog(), 100.0, 16, 9);
  const auto b = normalization_check(program, env::abr_catalog(), 100.0, 16, 9);
  EXPECT_EQ(a.passed, b.passed);
}

// ---- arch check ------------------------------------------------------------------

TEST(ArchCheck, AcceptsPensieve) {
  nn::StateSignature sig;
  sig.row_lengths = {1, 1, 8, 8, 6, 1};
  EXPECT_TRUE(arch_compilation_check(nn::ArchSpec::pensieve(), sig).passed);
}

TEST(ArchCheck, RejectsBadKernel) {
  nn::StateSignature sig;
  sig.row_lengths = {1, 8, 6};
  nn::ArchSpec spec = nn::ArchSpec::pensieve();
  spec.conv_kernel = 7;
  const auto result = arch_compilation_check(spec, sig);
  EXPECT_FALSE(result.passed);
  EXPECT_NE(result.reason.find("kernel"), std::string::npos);
}

// ---- text embedding ---------------------------------------------------------------

TEST(EmbedText, UnitNormAndDeterministic) {
  const auto a = embed_text("emit \"x\" = buffer_size_s / 10.0;", 64);
  const auto b = embed_text("emit \"x\" = buffer_size_s / 10.0;", 64);
  EXPECT_EQ(a, b);
  EXPECT_NEAR(nn::l2_norm(a), 1.0, 1e-9);
}

TEST(EmbedText, SimilarCodeCloserThanDissimilar) {
  const auto base = embed_text(dsl::pensieve_state_source(), 128);
  const auto similar = embed_text(
      dsl::pensieve_state_source() + "emit \"extra\" = 1.0;", 128);
  const auto different = embed_text(
      "let z = trend(buffer_size_s_history); emit \"q\" = z * z;", 128);
  EXPECT_GT(nn::dot(base, similar), nn::dot(base, different));
}

TEST(EmbedText, ShortTextIsZeroVector) {
  const auto e = embed_text("ab", 16);
  EXPECT_NEAR(nn::l2_norm(e), 0.0, 1e-12);
}

// ---- early stopping ----------------------------------------------------------------

/// Synthetic corpus where the early curve genuinely predicts the final
/// score: top designs ramp upward early, mediocre ones plateau low. This is
/// the regime the paper's "Reward Only" classifier exploits.
std::vector<DesignRecord> synthetic_corpus(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<DesignRecord> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    DesignRecord r;
    r.id = "design-" + std::to_string(i);
    // Latent quality in [0, 1], heavy at the bottom (most designs are bad).
    const double quality = std::pow(rng.uniform(), 2.0);
    r.final_score = quality + rng.normal(0.0, 0.02);
    const std::size_t len = 40;
    r.early_rewards.resize(len);
    for (std::size_t t = 0; t < len; ++t) {
      const double progress = static_cast<double>(t) / (len - 1);
      // Better designs ramp faster and higher.
      const double mean_reward =
          quality * (0.3 + 0.7 * progress) + (1.0 - quality) * 0.1;
      r.early_rewards[t] = mean_reward + rng.normal(0.0, 0.05);
    }
    // Code text largely uninformative about final quality, as in practice:
    // many designs share templates, and textual similarity does not imply
    // similar training outcomes (why the paper's Text Only method loses).
    static constexpr const char* kTemplates[] = {
        "emit \"a\" = trend(buffer_size_s_history);",
        "emit \"b\" = buffer_size_s / 10.0;",
        "emit \"c\" = ema(throughput_mbps, 0.5) / 8.0;",
        "emit \"d\" = diff(buffer_size_s_history) / 10.0;"};
    r.source_text = kTemplates[rng.uniform_int(0, 3)];
    records.push_back(std::move(r));
  }
  return records;
}

TEST(LabelTopFraction, CountsMatch) {
  const auto corpus = synthetic_corpus(200, 1);
  const auto labels = label_top_fraction(corpus, 0.05);
  std::size_t positives = 0;
  for (bool b : labels) positives += b ? 1 : 0;
  EXPECT_EQ(positives, 10u);
}

TEST(LabelTopFraction, TopScoresAreLabeled) {
  const auto corpus = synthetic_corpus(100, 2);
  const auto labels = label_top_fraction(corpus, 0.1);
  double min_pos = 1e9, max_neg = -1e9;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    if (labels[i]) {
      min_pos = std::min(min_pos, corpus[i].final_score);
    } else {
      max_neg = std::max(max_neg, corpus[i].final_score);
    }
  }
  EXPECT_GE(min_pos, max_neg);
}

TEST(EarlyStopModel, ZeroTrainFnrAfterThresholdTuning) {
  const auto corpus = synthetic_corpus(300, 3);
  EarlyStopConfig config;
  config.train.epochs = 25;
  EarlyStopModel model(EarlyStopMethod::kRewardOnly, config, 7);
  model.fit(corpus);
  const auto labels = label_top_fraction(corpus, config.top_fraction);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    if (labels[i]) {
      EXPECT_TRUE(model.keep(corpus[i])) << corpus[i].id;
    }
  }
}

TEST(EarlyStopModel, HeuristicsNeedNoFit) {
  const auto corpus = synthetic_corpus(100, 4);
  EarlyStopConfig config;
  EarlyStopModel max_model(EarlyStopMethod::kHeuristicMax, config, 1);
  max_model.fit(corpus);
  EXPECT_NO_THROW(max_model.score(corpus[0]));
  EarlyStopModel last_model(EarlyStopMethod::kHeuristicLast, config, 1);
  last_model.fit(corpus);
  EXPECT_DOUBLE_EQ(last_model.score(corpus[0]),
                   corpus[0].early_rewards.back());
}

TEST(EarlyStopModel, ScoreBeforeFitThrowsForClassifier) {
  EarlyStopConfig config;
  EarlyStopModel model(EarlyStopMethod::kRewardOnly, config, 1);
  DesignRecord r;
  r.early_rewards = {0.1, 0.2};
  EXPECT_THROW(model.score(r), std::logic_error);
}

TEST(EarlyStopModel, RejectsBadConfig) {
  EarlyStopConfig config;
  config.top_fraction = 0.0;
  EXPECT_THROW(EarlyStopModel(EarlyStopMethod::kRewardOnly, config, 1),
               std::invalid_argument);
  EarlyStopConfig config2;
  config2.smooth_fraction = 0.005;  // below top_fraction
  EXPECT_THROW(EarlyStopModel(EarlyStopMethod::kRewardOnly, config2, 1),
               std::invalid_argument);
}

TEST(EarlyStopModel, TinyCorpusRejected) {
  EarlyStopConfig config;
  EarlyStopModel model(EarlyStopMethod::kRewardOnly, config, 1);
  const auto corpus = synthetic_corpus(3, 5);
  EXPECT_THROW(model.fit(corpus), std::invalid_argument);
}

TEST(CrossValidate, RewardOnlyStopsMostBadDesignsWithoutLosingTop) {
  const auto corpus = synthetic_corpus(500, 6);
  EarlyStopConfig config;
  config.train.epochs = 30;
  const auto folds = cross_validate(EarlyStopMethod::kRewardOnly, config,
                                    corpus, 5, 11);
  ASSERT_EQ(folds.size(), 5u);
  double fnr = 0.0, tnr = 0.0;
  for (const auto& f : folds) {
    fnr += f.false_negative_rate;
    tnr += f.true_negative_rate;
  }
  fnr /= 5.0;
  tnr /= 5.0;
  // Paper: 87% TNR at 12% FNR. The synthetic corpus is friendlier, so we
  // ask for at least a solid trade-off.
  EXPECT_GT(tnr, 0.6);
  EXPECT_LT(fnr, 0.35);
}

TEST(CrossValidate, RewardBeatsTextOnly) {
  // Paper-sized corpus (2000 designs -> 400 training samples per fold):
  // with 1% positives, threshold tuning sees ~4 positives per fold, which
  // keeps the tuned threshold stable enough to compare methods.
  const auto corpus = synthetic_corpus(2000, 7);
  EarlyStopConfig config;
  config.train.epochs = 40;
  auto mean_tnr = [&](EarlyStopMethod m) {
    const auto folds = cross_validate(m, config, corpus, 5, 13);
    double tnr = 0.0;
    for (const auto& f : folds) tnr += f.true_negative_rate;
    return tnr / folds.size();
  };
  // Text alone cannot see training dynamics; reward curves can.
  EXPECT_GT(mean_tnr(EarlyStopMethod::kRewardOnly),
            mean_tnr(EarlyStopMethod::kTextOnly));
}

TEST(CrossValidate, AllMethodsRun) {
  const auto corpus = synthetic_corpus(200, 8);
  EarlyStopConfig config;
  config.train.epochs = 10;
  for (const auto method : all_early_stop_methods()) {
    const auto folds = cross_validate(method, config, corpus, 5, 17);
    EXPECT_EQ(folds.size(), 5u) << early_stop_method_name(method);
    for (const auto& f : folds) {
      EXPECT_GE(f.false_negative_rate, 0.0);
      EXPECT_LE(f.false_negative_rate, 1.0);
      EXPECT_GE(f.true_negative_rate, 0.0);
      EXPECT_LE(f.true_negative_rate, 1.0);
    }
  }
}

TEST(CrossValidate, CorpusTooSmallThrows) {
  const auto corpus = synthetic_corpus(8, 9);
  EarlyStopConfig config;
  EXPECT_THROW(
      cross_validate(EarlyStopMethod::kRewardOnly, config, corpus, 5, 1),
      std::invalid_argument);
}

TEST(EvaluateEarlyStop, MetricsComputedCorrectly) {
  // Hand-built scenario with a heuristic-last model and threshold we can
  // reason about: fit on records where positives end high.
  std::vector<DesignRecord> corpus;
  for (int i = 0; i < 20; ++i) {
    DesignRecord r;
    r.id = std::to_string(i);
    const bool top = i == 0;  // exactly one top design (5%)
    r.final_score = top ? 10.0 : static_cast<double>(i) * 0.1;
    r.early_rewards = {0.0, top ? 5.0 : 0.5 + 0.01 * i};
    corpus.push_back(r);
  }
  EarlyStopConfig config;
  config.top_fraction = 0.05;
  config.smooth_fraction = 0.20;
  EarlyStopModel model(EarlyStopMethod::kHeuristicLast, config, 1);
  model.fit(corpus);
  // Threshold sits just below 5.0: every non-top design is stopped.
  const auto labels = label_top_fraction(corpus, 0.05);
  const auto metrics = evaluate_early_stop(model, corpus, labels);
  EXPECT_EQ(metrics.positives, 1u);
  EXPECT_EQ(metrics.negatives, 19u);
  EXPECT_DOUBLE_EQ(metrics.false_negative_rate, 0.0);
  EXPECT_DOUBLE_EQ(metrics.true_negative_rate, 1.0);
}

TEST(EvaluateEarlyStop, SizeMismatchThrows) {
  EarlyStopConfig config;
  EarlyStopModel model(EarlyStopMethod::kHeuristicMax, config, 1);
  EXPECT_THROW(evaluate_early_stop(model, {}, {true}),
               std::invalid_argument);
}

TEST(LabelSmoothing, ImprovesOverRawTopLabels) {
  // With 1% positives and 400 training samples, raw labels give the
  // classifier ~4 positive examples; smoothing to 20% gives ~80. The
  // smoothed model should separate better (higher TNR at tuned threshold).
  const auto corpus = synthetic_corpus(500, 10);
  EarlyStopConfig smoothed;
  smoothed.train.epochs = 30;
  EarlyStopConfig raw = smoothed;
  raw.use_label_smoothing = false;

  auto mean_tnr = [&](const EarlyStopConfig& c) {
    const auto folds =
        cross_validate(EarlyStopMethod::kRewardOnly, c, corpus, 5, 19);
    double tnr = 0.0;
    for (const auto& f : folds) tnr += f.true_negative_rate;
    return tnr / folds.size();
  };
  EXPECT_GE(mean_tnr(smoothed) + 0.05, mean_tnr(raw));
}

}  // namespace
}  // namespace nada::filter

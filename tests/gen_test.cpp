// Tests for the candidate generators: calibration against Table 2,
// flaw-detection ground truth, diversity, and prompt-strategy ablations.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "env/abr_domain.h"
#include "filter/checks.h"
#include "gen/arch_gen.h"
#include "gen/profile.h"
#include "gen/state_gen.h"
#include "rl/agent.h"
#include "store/fingerprint.h"

namespace nada::gen {
namespace {

struct CheckedBatch {
  std::size_t total = 0;
  std::size_t compiled = 0;
  std::size_t normalized = 0;  // compiled AND normalized
};

CheckedBatch run_checks(const std::vector<StateCandidate>& batch) {
  CheckedBatch out;
  out.total = batch.size();
  for (const auto& cand : batch) {
    std::optional<dsl::StateProgram> program;
    const auto compile = filter::compilation_check(cand.source, env::abr_catalog(), &program);
    if (!compile.passed) continue;
    ++out.compiled;
    if (filter::normalization_check(*program, env::abr_catalog()).passed) ++out.normalized;
  }
  return out;
}

// ---- Table 2 calibration ------------------------------------------------------

TEST(StateGenerator, Gpt35RatesMatchTable2) {
  StateGenerator generator(gpt35_profile(), PromptStrategy{}, 42);
  const auto batch = generator.generate_batch(3000);
  const CheckedBatch checked = run_checks(batch);
  // Paper: 41.2% compilable, 27.4% well-normalized. Allow +-5pp.
  EXPECT_NEAR(static_cast<double>(checked.compiled) / 3000.0, 0.412, 0.05);
  EXPECT_NEAR(static_cast<double>(checked.normalized) / 3000.0, 0.274, 0.05);
}

TEST(StateGenerator, Gpt4RatesMatchTable2) {
  StateGenerator generator(gpt4_profile(), PromptStrategy{}, 43);
  const auto batch = generator.generate_batch(3000);
  const CheckedBatch checked = run_checks(batch);
  // Paper: 68.6% compilable, 50.2% well-normalized.
  EXPECT_NEAR(static_cast<double>(checked.compiled) / 3000.0, 0.686, 0.05);
  EXPECT_NEAR(static_cast<double>(checked.normalized) / 3000.0, 0.502, 0.05);
}

TEST(StateGenerator, Gpt4BeatsGpt35OnBothRates) {
  StateGenerator g35(gpt35_profile(), PromptStrategy{}, 1);
  StateGenerator g4(gpt4_profile(), PromptStrategy{}, 2);
  const CheckedBatch c35 = run_checks(g35.generate_batch(1000));
  const CheckedBatch c4 = run_checks(g4.generate_batch(1000));
  EXPECT_GT(c4.compiled, c35.compiled);
  EXPECT_GT(c4.normalized, c35.normalized);
}

// ---- flaw ground truth ----------------------------------------------------------

TEST(StateGenerator, PlantedSyntaxFlawsAlwaysFailCompileCheck) {
  StateGenerator generator(gpt35_profile(), PromptStrategy{}, 7);
  std::size_t syntax_seen = 0;
  for (int i = 0; i < 800 && syntax_seen < 100; ++i) {
    const StateCandidate cand = generator.generate();
    if (cand.flaw != InjectedFlaw::kSyntax) continue;
    ++syntax_seen;
    EXPECT_FALSE(filter::compilation_check(cand.source, env::abr_catalog()).passed)
        << cand.source;
  }
  EXPECT_GE(syntax_seen, 50u);
}

TEST(StateGenerator, PlantedRuntimeFlawsFailTrialRun) {
  StateGenerator generator(gpt4_profile(), PromptStrategy{}, 8);
  std::size_t runtime_seen = 0;
  for (int i = 0; i < 1500 && runtime_seen < 100; ++i) {
    const StateCandidate cand = generator.generate();
    if (cand.flaw != InjectedFlaw::kRuntime) continue;
    ++runtime_seen;
    EXPECT_FALSE(filter::compilation_check(cand.source, env::abr_catalog()).passed)
        << cand.source;
  }
  EXPECT_GE(runtime_seen, 50u);
}

TEST(StateGenerator, PlantedUnnormalizedFlawsFailNormCheckButCompile) {
  StateGenerator generator(gpt4_profile(), PromptStrategy{}, 9);
  std::size_t seen = 0;
  for (int i = 0; i < 1500 && seen < 100; ++i) {
    const StateCandidate cand = generator.generate();
    if (cand.flaw != InjectedFlaw::kUnnormalized) continue;
    ++seen;
    std::optional<dsl::StateProgram> program;
    ASSERT_TRUE(filter::compilation_check(cand.source, env::abr_catalog(), &program).passed)
        << cand.source;
    EXPECT_FALSE(filter::normalization_check(*program, env::abr_catalog()).passed)
        << cand.source;
  }
  EXPECT_GE(seen, 50u);
}

TEST(StateGenerator, CleanCandidatesPassBothChecks) {
  StateGenerator generator(gpt4_profile(), PromptStrategy{}, 10);
  std::size_t clean_seen = 0;
  std::size_t clean_passed = 0;
  for (int i = 0; i < 600 && clean_seen < 200; ++i) {
    const StateCandidate cand = generator.generate();
    if (cand.flaw != InjectedFlaw::kNone) continue;
    ++clean_seen;
    std::optional<dsl::StateProgram> program;
    if (filter::compilation_check(cand.source, env::abr_catalog(), &program).passed &&
        filter::normalization_check(*program, env::abr_catalog()).passed) {
      ++clean_passed;
    }
  }
  ASSERT_GE(clean_seen, 100u);
  // Clean templates are designed to be safe; a tiny accidental failure
  // rate is tolerated (the paper's checks are statistical, not exact).
  EXPECT_GT(static_cast<double>(clean_passed) / clean_seen, 0.97);
}

// ---- diversity -------------------------------------------------------------------

TEST(StateGenerator, ProducesDiversePrograms) {
  StateGenerator generator(gpt4_profile(), PromptStrategy{}, 11);
  std::set<std::string> unique_sources;
  for (int i = 0; i < 300; ++i) {
    unique_sources.insert(generator.generate().source);
  }
  EXPECT_GT(unique_sources.size(), 150u);
}

TEST(StateGenerator, AdvancedFeaturesAppear) {
  StateGenerator generator(gpt4_profile(), PromptStrategy{}, 12);
  std::set<std::string> tags;
  for (int i = 0; i < 500; ++i) {
    for (const auto& tag : generator.generate().feature_tags) {
      tags.insert(tag);
    }
  }
  // The §4 feature families should all show up in a big batch.
  EXPECT_TRUE(tags.contains("buf_trend"));
  EXPECT_TRUE(tags.contains("buf_diff"));
  EXPECT_TRUE(tags.contains("buf_savgol"));
  EXPECT_TRUE(tags.contains("tput_pred"));
  EXPECT_TRUE(tags.contains("ladder_rel"));
  EXPECT_TRUE(tags.contains("range_pm1"));
}

TEST(StateGenerator, DeterministicForSeed) {
  StateGenerator a(gpt4_profile(), PromptStrategy{}, 77);
  StateGenerator b(gpt4_profile(), PromptStrategy{}, 77);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.generate().source, b.generate().source);
  }
}

// ---- windowed replay (the streaming funnel's contract) -------------------------

TEST(StateGenerator, WindowedBatchesReplayTheOneShotStream) {
  // The streaming funnel pulls the stream in rolling windows; the ids and
  // sources must be byte-for-byte the ones a single materializing pull
  // produces, whatever the window size.
  StateGenerator one_shot(gpt4_profile(), PromptStrategy{}, 314);
  const auto whole = one_shot.generate_batch(35);
  for (const std::size_t window : {std::size_t{1}, std::size_t{7},
                                   std::size_t{16}}) {
    StateGenerator windowed(gpt4_profile(), PromptStrategy{}, 314);
    std::vector<StateCandidate> chunked;
    while (chunked.size() < whole.size()) {
      const std::size_t ask = std::min(window, whole.size() - chunked.size());
      for (auto& cand : windowed.generate_batch(ask)) {
        chunked.push_back(std::move(cand));
      }
    }
    EXPECT_EQ(windowed.position(), whole.size());
    ASSERT_EQ(chunked.size(), whole.size());
    for (std::size_t i = 0; i < whole.size(); ++i) {
      EXPECT_EQ(chunked[i].id, whole[i].id) << "window " << window;
      EXPECT_EQ(chunked[i].source, whole[i].source) << "window " << window;
      EXPECT_EQ(chunked[i].flaw, whole[i].flaw) << "window " << window;
    }
  }
}

TEST(StateGenerator, ResetReplaysAcrossWindowBoundaries) {
  // A resumed streaming run rewinds the generator and re-pulls in windows
  // that need not match the original run's: the historical id/source
  // stream must reproduce exactly across the new boundaries.
  StateGenerator generator(gpt4_profile(), PromptStrategy{}, 2718);
  const auto history = generator.generate_batch(10);
  generator.reset();
  EXPECT_EQ(generator.position(), 0u);
  std::vector<StateCandidate> replay;
  for (const std::size_t pull : {std::size_t{3}, std::size_t{3},
                                 std::size_t{3}, std::size_t{1}}) {
    for (auto& cand : generator.generate_batch(pull)) {
      replay.push_back(std::move(cand));
    }
  }
  ASSERT_EQ(replay.size(), history.size());
  for (std::size_t i = 0; i < history.size(); ++i) {
    EXPECT_EQ(replay[i].id, history[i].id);
    EXPECT_EQ(replay[i].source, history[i].source);
  }
}

TEST(StateGenerator, CcSpaceWindowedReplayMatches) {
  // The windowed-replay contract is space-independent: the CC design
  // space streams through the same generator machinery.
  StateGenerator one_shot(cc_state_space(), gpt4_profile(), PromptStrategy{},
                          99);
  const auto whole = one_shot.generate_batch(12);
  StateGenerator windowed(cc_state_space(), gpt4_profile(), PromptStrategy{},
                          99);
  std::vector<StateCandidate> chunked;
  for (int pull = 0; pull < 3; ++pull) {
    for (auto& cand : windowed.generate_batch(4)) {
      chunked.push_back(std::move(cand));
    }
  }
  ASSERT_EQ(chunked.size(), whole.size());
  for (std::size_t i = 0; i < whole.size(); ++i) {
    EXPECT_EQ(chunked[i].id, whole[i].id);
    EXPECT_EQ(chunked[i].source, whole[i].source);
  }
}

TEST(StateGenerator, IdsAreUniqueAndPrefixed) {
  StateGenerator generator(gpt35_profile(), PromptStrategy{}, 13);
  std::set<std::string> ids;
  for (int i = 0; i < 100; ++i) {
    const auto cand = generator.generate();
    EXPECT_TRUE(cand.id.starts_with("gpt-35-state-")) << cand.id;
    ids.insert(cand.id);
  }
  EXPECT_EQ(ids.size(), 100u);
}

// ---- prompt strategies --------------------------------------------------------------

TEST(PromptStrategy, DisablingNormalizationRequestRaisesUnnormalizedRate) {
  PromptStrategy without;
  without.request_normalization = false;
  StateGenerator with_gen(gpt4_profile(), PromptStrategy{}, 21);
  StateGenerator without_gen(gpt4_profile(), without, 22);
  const CheckedBatch with_rates = run_checks(with_gen.generate_batch(1500));
  const CheckedBatch without_rates =
      run_checks(without_gen.generate_batch(1500));
  const double norm_frac_with =
      static_cast<double>(with_rates.normalized) /
      std::max<std::size_t>(with_rates.compiled, 1);
  const double norm_frac_without =
      static_cast<double>(without_rates.normalized) /
      std::max<std::size_t>(without_rates.compiled, 1);
  EXPECT_LT(norm_frac_without, norm_frac_with - 0.05);
}

TEST(PromptStrategy, DisablingSemanticNamesLowersCompileRate) {
  PromptStrategy without;
  without.semantic_names = false;
  StateGenerator with_gen(gpt35_profile(), PromptStrategy{}, 23);
  StateGenerator without_gen(gpt35_profile(), without, 24);
  const CheckedBatch with_rates = run_checks(with_gen.generate_batch(1500));
  const CheckedBatch without_rates =
      run_checks(without_gen.generate_batch(1500));
  EXPECT_LT(without_rates.compiled, with_rates.compiled);
}

TEST(PromptStrategy, DisablingCotReducesDiversity) {
  PromptStrategy without;
  without.chain_of_thought = false;
  StateGenerator with_gen(gpt4_profile(), PromptStrategy{}, 25);
  StateGenerator without_gen(gpt4_profile(), without, 26);
  std::set<std::string> with_sources, without_sources;
  for (int i = 0; i < 400; ++i) {
    with_sources.insert(with_gen.generate().source);
    without_sources.insert(without_gen.generate().source);
  }
  EXPECT_LT(without_sources.size(), with_sources.size());
}

// ---- architecture generator -----------------------------------------------------------

nn::StateSignature pensieve_sig() {
  const auto program =
      dsl::StateProgram::compile(dsl::pensieve_state_source());
  return rl::derive_signature(program);
}

TEST(ArchGenerator, Gpt35InvalidRateMatchesPaper) {
  ArchGenerator generator(gpt35_profile(), PromptStrategy{}, 31);
  const auto batch = generator.generate_batch(3000);
  const nn::StateSignature sig = pensieve_sig();
  std::size_t compiled = 0;
  for (const auto& cand : batch) {
    if (filter::arch_compilation_check(cand.spec, sig).passed) ++compiled;
  }
  // §3.3: 760/3000 = 25.3% compilable. Allow +-5pp.
  EXPECT_NEAR(static_cast<double>(compiled) / 3000.0, 0.253, 0.05);
}

TEST(ArchGenerator, IntendedInvalidSpecsFailCheck) {
  ArchGenerator generator(gpt35_profile(), PromptStrategy{}, 32);
  const nn::StateSignature sig = pensieve_sig();
  std::size_t invalid_seen = 0;
  for (int i = 0; i < 400 && invalid_seen < 100; ++i) {
    const auto cand = generator.generate();
    if (!cand.intended_invalid) continue;
    ++invalid_seen;
    EXPECT_FALSE(filter::arch_compilation_check(cand.spec, sig).passed)
        << cand.description;
  }
  EXPECT_GE(invalid_seen, 50u);
}

TEST(ArchGenerator, ValidSpecsInstantiate) {
  ArchGenerator generator(gpt4_profile(), PromptStrategy{}, 33);
  const nn::StateSignature sig = pensieve_sig();
  std::size_t valid_seen = 0;
  for (int i = 0; i < 400 && valid_seen < 100; ++i) {
    const auto cand = generator.generate();
    if (cand.intended_invalid) continue;
    ++valid_seen;
    EXPECT_TRUE(filter::arch_compilation_check(cand.spec, sig).passed)
        << cand.description;
  }
  EXPECT_GE(valid_seen, 50u);
}

TEST(ArchGenerator, WindowedBatchesReplayTheOneShotStream) {
  ArchGenerator one_shot(gpt4_profile(), PromptStrategy{}, 55, 0.25);
  const auto whole = one_shot.generate_batch(20);
  ArchGenerator windowed(gpt4_profile(), PromptStrategy{}, 55, 0.25);
  std::vector<ArchCandidate> chunked;
  for (int pull = 0; pull < 4; ++pull) {
    for (auto& cand : windowed.generate_batch(5)) {
      chunked.push_back(std::move(cand));
    }
  }
  EXPECT_EQ(windowed.position(), 20u);
  ASSERT_EQ(chunked.size(), whole.size());
  for (std::size_t i = 0; i < whole.size(); ++i) {
    EXPECT_EQ(chunked[i].id, whole[i].id);
    EXPECT_EQ(chunked[i].description, whole[i].description);
    // Specs compare through their canonical content hash (ArchSpec has no
    // operator==): identical fingerprints mean identical store keys.
    EXPECT_EQ(store::fingerprint_arch(chunked[i].spec).hex(),
              store::fingerprint_arch(whole[i].spec).hex());
  }
  // reset() rewinds across window boundaries, like the state generator.
  windowed.reset();
  const auto replay = windowed.generate_batch(20);
  ASSERT_EQ(replay.size(), whole.size());
  for (std::size_t i = 0; i < whole.size(); ++i) {
    EXPECT_EQ(replay[i].id, whole[i].id);
    EXPECT_EQ(store::fingerprint_arch(replay[i].spec).hex(),
              store::fingerprint_arch(whole[i].spec).hex());
  }
}

TEST(ArchGenerator, CoversPaperVariants) {
  ArchGenerator generator(gpt4_profile(), PromptStrategy{}, 34);
  bool saw_rnn = false, saw_lstm = false, saw_shared = false,
       saw_leaky = false, saw_256 = false;
  for (int i = 0; i < 600; ++i) {
    const auto cand = generator.generate();
    if (cand.intended_invalid) continue;
    saw_rnn |= cand.spec.temporal == nn::TemporalUnit::kRnn;
    saw_lstm |= cand.spec.temporal == nn::TemporalUnit::kLstm;
    saw_shared |= cand.spec.shared_trunk;
    saw_leaky |= cand.spec.activation == nn::Activation::kLeakyRelu;
    saw_256 |= cand.spec.merge_hidden == 256;
  }
  EXPECT_TRUE(saw_rnn);
  EXPECT_TRUE(saw_lstm);
  EXPECT_TRUE(saw_shared);
  EXPECT_TRUE(saw_leaky);
  EXPECT_TRUE(saw_256);
}

TEST(Profile, FlawNamesExposed) {
  EXPECT_STREQ(injected_flaw_name(InjectedFlaw::kNone), "none");
  EXPECT_STREQ(injected_flaw_name(InjectedFlaw::kSyntax), "syntax");
  EXPECT_STREQ(injected_flaw_name(InjectedFlaw::kRuntime), "runtime");
  EXPECT_STREQ(injected_flaw_name(InjectedFlaw::kUnnormalized),
               "unnormalized");
}

TEST(Profile, StrategyMultipliersCap) {
  // Even with every strategy off, fates must remain a valid distribution.
  PromptStrategy off;
  off.chain_of_thought = false;
  off.semantic_names = false;
  off.request_normalization = false;
  const LlmProfile p = gpt35_profile().with_strategy(off);
  EXPECT_LE(p.p_syntax_error + p.p_runtime_error + p.p_unnormalized, 1.0);
}

}  // namespace
}  // namespace nada::gen

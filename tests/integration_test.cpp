// End-to-end integration tests crossing every module boundary:
// generator -> DSL -> checks -> env -> nn -> rl -> pipeline, plus
// determinism and failure-injection properties that only show up when the
// whole stack runs together.
#include <gtest/gtest.h>

#include <cmath>

#include "abr/policies.h"
#include "core/pipeline.h"

namespace nada {
namespace {

core::PipelineConfig small_config() {
  core::PipelineConfig config;
  config.num_candidates = 30;
  config.early_epochs = 12;
  config.full_train_top = 2;
  config.seeds = 2;
  config.train.epochs = 60;
  config.train.test_interval = 20;
  config.train.max_eval_traces = 3;
  nn::ArchSpec arch = nn::ArchSpec::pensieve();
  arch.conv_filters = arch.rnn_hidden = arch.scalar_hidden =
      arch.merge_hidden = 8;
  config.baseline_arch = arch;
  return config;
}

TEST(Integration, FullStateSearchIsDeterministicForSeed) {
  const trace::Dataset dataset =
      trace::build_dataset(trace::Environment::kFcc, 0.03, 5);
  const video::Video video =
      video::make_test_video(video::pensieve_ladder(), 5);

  auto run = [&] {
    core::Pipeline pipeline(dataset, video, small_config(), 42, nullptr);
    gen::StateGenerator generator(gen::gpt4_profile(), gen::PromptStrategy{},
                                  9);
    return pipeline.search_states(generator, small_config().baseline_arch);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.n_compiled, b.n_compiled);
  EXPECT_EQ(a.n_normalized, b.n_normalized);
  EXPECT_EQ(a.best_index, b.best_index);
  EXPECT_DOUBLE_EQ(a.best_score, b.best_score);
  EXPECT_DOUBLE_EQ(a.original_score, b.original_score);
}

TEST(Integration, ParallelPipelineMatchesSerial) {
  const trace::Dataset dataset =
      trace::build_dataset(trace::Environment::kStarlink, 0.1, 6);
  const video::Video video =
      video::make_test_video(video::pensieve_ladder(), 6);

  core::Pipeline serial(dataset, video, small_config(), 7, nullptr);
  gen::StateGenerator g1(gen::gpt4_profile(), gen::PromptStrategy{}, 3);
  const auto a = serial.search_states(g1, small_config().baseline_arch);

  util::ThreadPool pool(8);
  core::Pipeline parallel(dataset, video, small_config(), 7, &pool);
  gen::StateGenerator g2(gen::gpt4_profile(), gen::PromptStrategy{}, 3);
  const auto b = parallel.search_states(g2, small_config().baseline_arch);

  EXPECT_EQ(a.n_compiled, b.n_compiled);
  EXPECT_EQ(a.n_normalized, b.n_normalized);
  EXPECT_EQ(a.best_index, b.best_index);
  EXPECT_DOUBLE_EQ(a.best_score, b.best_score);
}

TEST(Integration, GeneratedWinnerIsARunnableProgram) {
  const trace::Dataset dataset =
      trace::build_dataset(trace::Environment::kStarlink, 0.1, 8);
  const video::Video video =
      video::make_test_video(video::pensieve_ladder(), 8);
  util::ThreadPool pool(8);
  core::Pipeline pipeline(dataset, video, small_config(), 11, &pool);
  gen::StateGenerator generator(gen::gpt4_profile(), gen::PromptStrategy{},
                                21);
  const auto result =
      pipeline.search_states(generator, small_config().baseline_arch);
  ASSERT_TRUE(result.has_best());
  // The winning source must recompile and pass both checks from scratch.
  std::optional<dsl::StateProgram> program;
  const auto& best = result.outcomes[result.best_index];
  EXPECT_TRUE(filter::compilation_check(best.source, env::abr_catalog(), &program).passed);
  EXPECT_TRUE(filter::normalization_check(*program, env::abr_catalog()).passed);
  // And it must produce a state consumable by a fresh agent.
  util::Rng rng(1);
  rl::AbrAgent agent(*program, small_config().baseline_arch, 6, rng);
  EXPECT_NO_THROW(
      agent.decide(env::canned_observation(), /*sample=*/false, rng));
}

TEST(Integration, EmulationScoresShiftButOrderingHolds) {
  // Train two designs of clearly different quality and verify the
  // emulation substrate preserves their ordering (Table 4's claim).
  const trace::Dataset dataset =
      trace::build_dataset(trace::Environment::kStarlink, 0.1, 13);
  const video::Video video =
      video::make_test_video(video::pensieve_ladder(), 13);
  rl::SessionConfig config;
  config.seeds = 2;
  config.train.epochs = 300;
  config.train.test_interval = 50;
  config.train.emulation_final_eval = true;
  nn::ArchSpec arch = small_config().baseline_arch;
  util::ThreadPool pool(8);

  const auto good = dsl::StateProgram::compile(dsl::pensieve_state_source());
  // A deliberately crippled state: constant features carry no information.
  const auto bad = dsl::StateProgram::compile(
      "emit \"nothing\" = 0.5;\nemit \"more_nothing\" = vec(8, 0.5);\n");
  const auto good_result =
      rl::run_sessions(dataset, video, good, arch, config, 31, &pool);
  const auto bad_result =
      rl::run_sessions(dataset, video, bad, arch, config, 31, &pool);
  ASSERT_FALSE(good_result.failed);
  ASSERT_FALSE(bad_result.failed);
  EXPECT_GT(good_result.test_score, bad_result.test_score);
  EXPECT_GT(good_result.emulation_score, bad_result.emulation_score);
  // Emulation shifts absolute numbers.
  EXPECT_NE(good_result.emulation_score, good_result.test_score);
}

TEST(Integration, InformativeStateBeatsBlindState) {
  // The RL stack must be able to exploit state information: an agent that
  // can see throughput/buffer must out-learn one that cannot.
  const trace::Dataset dataset =
      trace::build_dataset(trace::Environment::k4G, 0.05, 17);
  const video::Video video =
      video::make_test_video(video::youtube_ladder(), 17);
  rl::SessionConfig config;
  config.seeds = 3;
  config.train.epochs = 800;
  config.train.test_interval = 80;
  nn::ArchSpec arch = nn::ArchSpec::pensieve();
  arch.conv_filters = arch.rnn_hidden = arch.scalar_hidden =
      arch.merge_hidden = 16;
  util::ThreadPool pool(8);

  const auto sighted =
      dsl::StateProgram::compile(dsl::pensieve_state_source());
  const auto blind = dsl::StateProgram::compile(
      "emit \"constant\" = 0.5;\n");
  const auto sighted_result =
      rl::run_sessions(dataset, video, sighted, arch, config, 77, &pool);
  const auto blind_result =
      rl::run_sessions(dataset, video, blind, arch, config, 77, &pool);
  EXPECT_GT(sighted_result.test_score, blind_result.test_score);
}

TEST(Integration, TrainedAgentBeatsNaiveBaselinesOnEasyEnv) {
  const trace::Dataset dataset =
      trace::build_dataset(trace::Environment::k4G, 0.05, 23);
  const video::Video video =
      video::make_test_video(video::youtube_ladder(), 23);
  rl::SessionConfig config;
  config.seeds = 2;
  config.train.epochs = 1000;
  config.train.test_interval = 100;
  nn::ArchSpec arch = nn::ArchSpec::pensieve();
  arch.conv_filters = arch.rnn_hidden = arch.scalar_hidden =
      arch.merge_hidden = 16;
  util::ThreadPool pool(8);
  const auto program =
      dsl::StateProgram::compile(dsl::pensieve_state_source());
  const auto trained =
      rl::run_sessions(dataset, video, program, arch, config, 3, &pool);

  abr::FixedPolicy fixed_low(0);
  const double low = abr::evaluate_policy(
      fixed_low, dataset.test, video, env::Fidelity::kSimulation, 3);
  EXPECT_GT(trained.test_score, low);
}

TEST(Integration, ArchSearchWinnersReinstantiate) {
  const trace::Dataset dataset =
      trace::build_dataset(trace::Environment::kFcc, 0.03, 29);
  const video::Video video =
      video::make_test_video(video::pensieve_ladder(), 29);
  util::ThreadPool pool(8);
  core::PipelineConfig config = small_config();
  config.num_candidates = 25;
  core::Pipeline pipeline(dataset, video, config, 31, &pool);
  gen::ArchGenerator generator(gen::gpt35_profile(), gen::PromptStrategy{},
                               41, 0.1);
  const auto state = dsl::StateProgram::compile(dsl::pensieve_state_source());
  const auto result = pipeline.search_archs(generator, state);
  if (result.has_best()) {
    const auto& best = result.outcomes[result.best_index];
    ASSERT_TRUE(best.arch.has_value());
    const nn::StateSignature sig = rl::derive_signature(state);
    EXPECT_TRUE(filter::arch_compilation_check(*best.arch, sig).passed);
  }
}

}  // namespace
}  // namespace nada

// Tests for the runtime-dispatched SIMD kernel flavors (nn/mat_kernels.h):
// strict NADA_NN_KERNEL resolution, the avx2 bit-identity contract, the
// fma pinned-divergence contract, aligned Mat storage, and the per-thread
// volume counters behind nn.matmul.*.
#include "nn/mat_kernels.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "nn/mat.h"
#include "util/rng.h"

namespace nada::nn {
namespace {

Mat random_mat(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  util::Rng rng(seed);
  Mat m(rows, cols);
  for (double& v : m.data()) v = rng.uniform(-1.5, 1.5);
  return m;
}

bool same_bits(const Mat& a, const Mat& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.data()[i] != b.data()[i]) return false;
  }
  return true;
}

// Restores the pre-test flavor so flavor-switching tests cannot leak into
// the rest of the binary's tests.
class FlavorGuard {
 public:
  FlavorGuard() : saved_(kernel_flavor()) {}
  ~FlavorGuard() { set_kernel_flavor(saved_); }

 private:
  KernelFlavor saved_;
};

bool avx2_runnable() {
  return built_with_avx2_kernels() && cpu_supports_avx2();
}

bool fma_runnable() {
  return built_with_fma_kernels() && cpu_supports_avx2() &&
         cpu_supports_fma();
}

// ---- resolve_kernel_flavor: the strict-validation contract ----------------

TEST(KernelResolve, UnsetPicksBestBitIdenticalFlavor) {
  // Default is avx2 exactly when both the build and the CPU have it...
  EXPECT_EQ(resolve_kernel_flavor(nullptr, true, true, true, true),
            KernelFlavor::kAvx2);
  EXPECT_EQ(resolve_kernel_flavor("", true, true, true, true),
            KernelFlavor::kAvx2);
  // ...and never fma, which changes result bits.
  EXPECT_EQ(resolve_kernel_flavor(nullptr, true, false, true, true),
            KernelFlavor::kAvx2);
  // Missing build support or missing CPU support each fall back to scalar.
  EXPECT_EQ(resolve_kernel_flavor(nullptr, false, false, true, true),
            KernelFlavor::kScalar);
  EXPECT_EQ(resolve_kernel_flavor(nullptr, true, true, false, false),
            KernelFlavor::kScalar);
}

TEST(KernelResolve, ExplicitRequestsResolve) {
  EXPECT_EQ(resolve_kernel_flavor("scalar", true, true, true, true),
            KernelFlavor::kScalar);
  // scalar works even with nothing else available.
  EXPECT_EQ(resolve_kernel_flavor("scalar", false, false, false, false),
            KernelFlavor::kScalar);
  EXPECT_EQ(resolve_kernel_flavor("avx2", true, true, true, true),
            KernelFlavor::kAvx2);
  EXPECT_EQ(resolve_kernel_flavor("fma", true, true, true, true),
            KernelFlavor::kFma);
}

TEST(KernelResolve, UnknownValueThrowsDescriptively) {
  try {
    resolve_kernel_flavor("sse9", true, true, true, true);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("NADA_NN_KERNEL"), std::string::npos) << what;
    EXPECT_NE(what.find("scalar|avx2|fma"), std::string::npos) << what;
    EXPECT_NE(what.find("sse9"), std::string::npos) << what;
  }
  // Near-misses are not corrected silently.
  EXPECT_THROW(resolve_kernel_flavor("AVX2", true, true, true, true),
               std::runtime_error);
  EXPECT_THROW(resolve_kernel_flavor(" avx2", true, true, true, true),
               std::runtime_error);
}

TEST(KernelResolve, UnsatisfiableRequestsFailLoudly) {
  // avx2 requested but not built / not supported by the CPU.
  EXPECT_THROW(resolve_kernel_flavor("avx2", false, false, true, true),
               std::runtime_error);
  EXPECT_THROW(resolve_kernel_flavor("avx2", true, true, false, false),
               std::runtime_error);
  // fma requested but not built / CPU lacks either AVX2 or FMA.
  EXPECT_THROW(resolve_kernel_flavor("fma", true, false, true, true),
               std::runtime_error);
  EXPECT_THROW(resolve_kernel_flavor("fma", true, true, false, true),
               std::runtime_error);
  EXPECT_THROW(resolve_kernel_flavor("fma", true, true, true, false),
               std::runtime_error);
  try {
    resolve_kernel_flavor("avx2", true, true, false, false);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("CPU"), std::string::npos)
        << e.what();
  }
}

TEST(KernelDispatch, SetKernelFlavorRejectsUnrunnableFlavors) {
  if (avx2_runnable()) {
    GTEST_SKIP() << "this machine can run every compiled flavor";
  }
  EXPECT_THROW(set_kernel_flavor(KernelFlavor::kAvx2), std::exception);
}

TEST(KernelDispatch, FlavorNamesAreStable) {
  EXPECT_STREQ(kernel_flavor_name(KernelFlavor::kScalar), "scalar");
  EXPECT_STREQ(kernel_flavor_name(KernelFlavor::kAvx2), "avx2");
  EXPECT_STREQ(kernel_flavor_name(KernelFlavor::kFma), "fma");
}

TEST(KernelDispatch, BuildImpliesCoherentDefault) {
  // Whatever the environment chose, the active flavor must be runnable.
  const KernelFlavor flavor = kernel_flavor();
  if (flavor == KernelFlavor::kAvx2) EXPECT_TRUE(avx2_runnable());
  if (flavor == KernelFlavor::kFma) EXPECT_TRUE(fma_runnable());
}

// ---- storage alignment -----------------------------------------------------

TEST(KernelStorage, MatBasePointerIs32ByteAligned) {
  for (std::size_t rows : {1u, 3u, 7u, 32u}) {
    for (std::size_t cols : {1u, 5u, 13u, 64u}) {
      Mat m(rows, cols);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.ptr()) % Mat::kAlignment,
                0u)
          << rows << "x" << cols;
    }
  }
}

// ---- avx2: bit-identical to scalar -----------------------------------------

// Runs f under `flavor` and under scalar, returns both results.
template <typename F>
std::pair<Mat, Mat> under_both(KernelFlavor flavor, F f) {
  FlavorGuard guard;
  set_kernel_flavor(flavor);
  Mat vec = f();
  set_kernel_flavor(KernelFlavor::kScalar);
  Mat ref = f();
  return {std::move(vec), std::move(ref)};
}

TEST(KernelBitIdentity, Avx2MatchesScalarBitwiseAcrossShapes) {
  if (!avx2_runnable()) GTEST_SKIP() << "avx2 kernels unavailable";
  std::uint64_t seed = 71;
  // Shapes chosen to hit every path: 4-row tiles, row tails, 8/4-column
  // vector blocks, column tails, and sub-vector widths.
  const std::size_t dims[] = {1, 2, 3, 4, 5, 7, 8, 11, 16, 21};
  for (std::size_t n : dims) {
    for (std::size_t k : {1u, 3u, 8u, 13u}) {
      for (std::size_t m : dims) {
        const Mat a = random_mat(n, k, seed++);
        const Mat bt = random_mat(m, k, seed++);
        const Mat b = random_mat(k, m, seed++);
        const Mat grad = random_mat(n, m, seed++);

        auto [c_nt, r_nt] =
            under_both(KernelFlavor::kAvx2, [&] { return matmul_nt(a, bt); });
        EXPECT_TRUE(same_bits(c_nt, r_nt))
            << "matmul_nt " << n << "x" << k << " * " << m << "x" << k;

        auto [c_mm, r_mm] =
            under_both(KernelFlavor::kAvx2, [&] { return matmul(a, b); });
        EXPECT_TRUE(same_bits(c_mm, r_mm))
            << "matmul " << n << "x" << k << " * " << k << "x" << m;

        auto [c_tn, r_tn] = under_both(KernelFlavor::kAvx2, [&] {
          Mat c = random_mat(k, m, seed);  // same seed both runs
          add_matmul_tn(c, a, grad);
          return c;
        });
        EXPECT_TRUE(same_bits(c_tn, r_tn))
            << "add_matmul_tn " << n << "x" << k << " ^T * " << n << "x" << m;
      }
    }
  }
}

TEST(KernelBitIdentity, Avx2WtAxpyMatchesScalarBitwise) {
  if (!avx2_runnable()) GTEST_SKIP() << "avx2 kernels unavailable";
  std::uint64_t seed = 1009;
  for (std::size_t k : {1u, 2u, 5u, 8u}) {
    for (std::size_t out : {1u, 3u, 4u, 7u, 8u, 12u, 19u, 32u}) {
      const Mat wt = random_mat(k, out, seed++);
      const Mat x = random_mat(1, k, seed++);
      std::vector<double> z_vec(out, 0.25);
      std::vector<double> z_ref(out, 0.25);
      {
        FlavorGuard guard;
        set_kernel_flavor(KernelFlavor::kAvx2);
        active_kernels().wt_axpy(wt.ptr(), x.ptr(), z_vec.data(), k, out);
        set_kernel_flavor(KernelFlavor::kScalar);
        active_kernels().wt_axpy(wt.ptr(), x.ptr(), z_ref.data(), k, out);
      }
      for (std::size_t j = 0; j < out; ++j) {
        EXPECT_EQ(z_vec[j], z_ref[j]) << "k=" << k << " out=" << out
                                      << " j=" << j;
      }
    }
  }
}

// ---- fma: pinned-divergent -------------------------------------------------

TEST(KernelBitIdentity, FmaIsCloseButAllowedToDiverge) {
  if (!fma_runnable()) GTEST_SKIP() << "fma kernels unavailable";
  const Mat a = random_mat(8, 16, 4242);
  const Mat b = random_mat(16, 8, 4343);
  auto [c_fma, c_ref] =
      under_both(KernelFlavor::kFma, [&] { return matmul(a, b); });
  // The contract is numerical closeness, NOT bit equality: fused rounding
  // may (and in practice does) change low-order bits. Journals under fma
  // are scoped by the kernel=fma token instead.
  ASSERT_EQ(c_fma.rows(), c_ref.rows());
  for (std::size_t i = 0; i < c_fma.size(); ++i) {
    EXPECT_NEAR(c_fma.data()[i], c_ref.data()[i], 1e-9) << i;
  }
}

// ---- volume counters -------------------------------------------------------

TEST(KernelCounting, MatmulWrappersTallyCallsAndFlops) {
  const KernelCounters before = thread_kernel_counters();
  const Mat a = random_mat(4, 6, 99);
  const Mat b = random_mat(6, 5, 100);
  const Mat c = matmul(a, b);  // 2 * 4 * 6 * 5 flops
  const Mat bt = random_mat(5, 6, 101);
  const Mat d = matmul_nt(a, bt);  // 2 * 4 * 6 * 5 flops
  Mat acc = random_mat(6, 5, 102);
  add_matmul_tn(acc, a, c);  // 2 * 4 * 6 * 5 flops
  const KernelCounters after = thread_kernel_counters();
  EXPECT_EQ(after.matmul_calls - before.matmul_calls, 3u);
  EXPECT_EQ(after.matmul_flops - before.matmul_flops, 3u * 2 * 4 * 6 * 5);
}

}  // namespace
}  // namespace nada::nn

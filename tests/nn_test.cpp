// Tests for the neural-network substrate. The crucial ones are numerical
// gradient checks: every layer's analytic backward pass is compared with
// finite differences of a scalar loss.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <string>

#include "nn/arch.h"
#include "nn/classifier.h"
#include "nn/layers.h"
#include "nn/mat.h"
#include "nn/optimizer.h"
#include "util/rng.h"

namespace nada::nn {
namespace {

// ---- Mat --------------------------------------------------------------------

TEST(Mat, MatvecKnownValues) {
  Mat m(2, 3);
  // [[1,2,3],[4,5,6]] * [1,1,1] = [6,15]
  double v = 1.0;
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) m(r, c) = v++;
  }
  const Vec y = m.matvec(std::vector<double>{1, 1, 1});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(Mat, MatvecTransposedKnownValues) {
  Mat m(2, 3);
  double v = 1.0;
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) m(r, c) = v++;
  }
  const Vec y = m.matvec_transposed(std::vector<double>{1, 1});
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
  EXPECT_DOUBLE_EQ(y[2], 9.0);
}

TEST(Mat, AddOuterKnownValues) {
  Mat m(2, 2);
  m.add_outer(std::vector<double>{1, 2}, std::vector<double>{3, 4}, 2.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 8.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 12.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 16.0);
}

TEST(Mat, ShapeMismatchThrows) {
  Mat m(2, 3);
  EXPECT_THROW(m.matvec(std::vector<double>{1, 1}), std::invalid_argument);
  EXPECT_THROW(m.matvec_transposed(std::vector<double>{1, 1, 1}),
               std::invalid_argument);
  Mat other(3, 2);
  EXPECT_THROW(m.add_scaled(other, 1.0), std::invalid_argument);
}

TEST(Mat, ZeroDimensionThrows) {
  EXPECT_THROW(Mat(0, 3), std::invalid_argument);
  EXPECT_THROW(Mat(3, 0), std::invalid_argument);
}

TEST(VecOps, SoftmaxSumsToOne) {
  const Vec probs = softmax(std::vector<double>{1.0, 2.0, 3.0});
  double total = 0.0;
  for (double p : probs) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_GT(probs[2], probs[1]);
  EXPECT_GT(probs[1], probs[0]);
}

TEST(VecOps, SoftmaxHandlesLargeLogits) {
  const Vec probs = softmax(std::vector<double>{1000.0, 1000.0});
  EXPECT_NEAR(probs[0], 0.5, 1e-12);
  EXPECT_NEAR(probs[1], 0.5, 1e-12);
}

TEST(VecOps, EntropyUniformIsLogN) {
  const Vec probs(4, 0.25);
  EXPECT_NEAR(entropy(probs), std::log(4.0), 1e-12);
  const Vec onehot = {1.0, 0.0, 0.0};
  EXPECT_NEAR(entropy(onehot), 0.0, 1e-9);
}

TEST(VecOps, ResampleLinearEndpoints) {
  const Vec xs = {0.0, 1.0, 2.0, 3.0};
  const Vec out = resample_linear(xs, 7);
  ASSERT_EQ(out.size(), 7u);
  EXPECT_DOUBLE_EQ(out.front(), 0.0);
  EXPECT_DOUBLE_EQ(out.back(), 3.0);
  EXPECT_NEAR(out[3], 1.5, 1e-12);
}

TEST(VecOps, ResampleFromSingleValue) {
  const Vec out = resample_linear(std::vector<double>{5.0}, 4);
  for (double v : out) EXPECT_DOUBLE_EQ(v, 5.0);
}

// ---- gradient checks ----------------------------------------------------------

// Scalar loss L = sum(w_out .* layer(x)); checks dL/dx and dL/dparams
// against central finite differences.
void check_layer_gradients(Layer& layer, const Vec& x, double tol = 1e-5) {
  util::Rng rng(777);
  Vec w_out(layer.out_dim());
  for (double& w : w_out) w = rng.uniform(-1.0, 1.0);

  auto loss = [&](const Vec& input) {
    const Vec y = layer.forward(input);
    return dot(y, w_out);
  };

  // Analytic gradients.
  layer.zero_grad();
  (void)layer.forward(x);
  const Vec dx = layer.backward(w_out);

  // Input gradient check.
  const double eps = 1e-6;
  for (std::size_t i = 0; i < x.size(); ++i) {
    Vec xp = x;
    Vec xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const double numeric = (loss(xp) - loss(xm)) / (2 * eps);
    EXPECT_NEAR(dx[i], numeric, tol) << "input grad " << i;
  }

  // Parameter gradient check. Re-run analytic backward because the finite
  // difference probes disturbed the forward cache.
  layer.zero_grad();
  (void)layer.forward(x);
  (void)layer.backward(w_out);
  for (auto& p : layer.params()) {
    auto& values = p.value->data();
    auto& grads = p.grad->data();
    // Probe a subset of parameters to keep the test fast.
    const std::size_t stride = std::max<std::size_t>(values.size() / 25, 1);
    for (std::size_t j = 0; j < values.size(); j += stride) {
      const double saved = values[j];
      values[j] = saved + eps;
      const double up = loss(x);
      values[j] = saved - eps;
      const double down = loss(x);
      values[j] = saved;
      const double numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(grads[j], numeric, tol) << "param grad " << j;
    }
  }
}

TEST(GradCheck, DenseLinear) {
  util::Rng rng(1);
  Dense layer(5, 4, Activation::kLinear, rng);
  check_layer_gradients(layer, {0.5, -0.3, 1.2, 0.0, -0.9});
}

TEST(GradCheck, DenseTanh) {
  util::Rng rng(2);
  Dense layer(4, 6, Activation::kTanh, rng);
  check_layer_gradients(layer, {0.2, -0.6, 0.9, 0.1});
}

TEST(GradCheck, DenseSigmoid) {
  util::Rng rng(3);
  Dense layer(3, 3, Activation::kSigmoid, rng);
  check_layer_gradients(layer, {1.0, -1.0, 0.3});
}

TEST(GradCheck, DenseLeakyRelu) {
  util::Rng rng(4);
  Dense layer(4, 5, Activation::kLeakyRelu, rng);
  // Inputs chosen so pre-activations stay away from the kink.
  check_layer_gradients(layer, {0.7, -0.8, 0.45, 1.3}, 1e-4);
}

TEST(GradCheck, DenseElu) {
  util::Rng rng(5);
  Dense layer(4, 4, Activation::kElu, rng);
  check_layer_gradients(layer, {0.7, -0.4, 0.2, -1.1}, 1e-4);
}

TEST(GradCheck, Conv1D) {
  util::Rng rng(6);
  Conv1D layer(8, 3, 4, Activation::kTanh, rng);
  check_layer_gradients(layer, {0.1, -0.2, 0.3, 0.5, -0.6, 0.4, 0.0, 0.9});
}

TEST(GradCheck, Conv1DKernelOne) {
  util::Rng rng(7);
  Conv1D layer(5, 2, 1, Activation::kLinear, rng);
  check_layer_gradients(layer, {0.3, 0.1, -0.4, 0.8, -0.2});
}

TEST(GradCheck, Conv1DFullWidthKernel) {
  util::Rng rng(8);
  Conv1D layer(6, 4, 6, Activation::kTanh, rng);
  check_layer_gradients(layer, {0.2, -0.1, 0.4, 0.3, -0.5, 0.6});
}

TEST(GradCheck, SimpleRnn) {
  util::Rng rng(9);
  SimpleRnn layer(6, 5, rng);
  check_layer_gradients(layer, {0.5, -0.3, 0.8, 0.2, -0.7, 0.1}, 1e-4);
}

TEST(GradCheck, Lstm) {
  util::Rng rng(10);
  Lstm layer(5, 4, rng);
  check_layer_gradients(layer, {0.4, -0.6, 0.9, -0.1, 0.3}, 1e-4);
}

// ---- batched kernels and batched layer passes --------------------------------

TEST(Mat, MatmulNtMatchesMatvecPerRow) {
  util::Rng rng(41);
  Mat a(3, 5);
  Mat b(4, 5);
  for (double& v : a.data()) v = rng.uniform(-1.0, 1.0);
  for (double& v : b.data()) v = rng.uniform(-1.0, 1.0);
  const Mat c = matmul_nt(a, b);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const Vec expect = b.matvec(a.row(i));
    for (std::size_t j = 0; j < b.rows(); ++j) {
      EXPECT_EQ(c(i, j), expect[j]);  // bitwise
    }
  }
}

TEST(Mat, MatmulMatchesMatvecTransposedPerRow) {
  util::Rng rng(42);
  Mat a(3, 4);
  Mat b(4, 6);
  for (double& v : a.data()) v = rng.uniform(-1.0, 1.0);
  for (double& v : b.data()) v = rng.uniform(-1.0, 1.0);
  const Mat c = matmul(a, b);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const Vec expect = b.matvec_transposed(a.row(i));
    for (std::size_t j = 0; j < b.cols(); ++j) {
      EXPECT_EQ(c(i, j), expect[j]);  // bitwise
    }
  }
}

TEST(Mat, AddMatmulTnMatchesSequentialAddOuter) {
  util::Rng rng(43);
  Mat a(5, 3);
  Mat b(5, 4);
  for (double& v : a.data()) v = rng.uniform(-1.0, 1.0);
  for (double& v : b.data()) v = rng.uniform(-1.0, 1.0);
  Mat sequential(3, 4, 0.5);
  for (std::size_t n = 0; n < a.rows(); ++n) {
    sequential.add_outer(a.row(n), b.row(n));
  }
  Mat batched(3, 4, 0.5);
  add_matmul_tn(batched, a, b);
  EXPECT_EQ(sequential.data(), batched.data());  // bitwise
}

TEST(Mat, BatchedKernelShapeMismatchThrows) {
  Mat a(2, 3);
  Mat b(2, 4);
  EXPECT_THROW((void)matmul_nt(a, b), std::invalid_argument);
  EXPECT_THROW((void)matmul(a, b), std::invalid_argument);
  Mat c(3, 3);
  EXPECT_THROW(add_matmul_tn(c, a, b), std::invalid_argument);
}

// The kernels reject bad shapes with stable, kernel-naming messages; these
// are the diagnostics operators see when a capture cache and a gradient
// matrix drift apart, so the text itself is pinned.
TEST(Mat, BatchedKernelMismatchMessages) {
  auto message_of = [](auto&& fn) -> std::string {
    try {
      fn();
    } catch (const std::invalid_argument& e) {
      return e.what();
    }
    return "(no throw)";
  };
  Mat a(2, 3);
  Mat b(2, 4);
  Mat c(3, 3);
  EXPECT_EQ(message_of([&] { (void)matmul_nt(a, b); }),
            "matmul_nt: inner dimension mismatch");
  EXPECT_EQ(message_of([&] { (void)matmul(a, b); }),
            "matmul: inner dimension mismatch");
  EXPECT_EQ(message_of([&] { add_matmul_tn(c, a, b); }),
            "add_matmul_tn: shape mismatch");
  // Zero-dimension matrices are unrepresentable, so "0-row" inputs are
  // rejected at construction — the kernels never see them.
  EXPECT_EQ(message_of([&] { Mat m(0, 3); }), "Mat: zero dimension");
  EXPECT_EQ(message_of([&] { Mat m(3, 0); }), "Mat: zero dimension");
}

/// Fills a matrix with a deterministic pseudo-random pattern.
Mat random_mat(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  util::Rng rng(seed);
  Mat m(rows, cols);
  for (double& v : m.data()) v = rng.uniform(-1.0, 1.0);
  return m;
}

// Tail-vs-tiled pins: the kernels tile four rows (matmul, matmul_nt) or
// four samples (add_matmul_tn) per sweep and fall back to a remainder loop
// for the rest. A row's result must not depend on which path computed it,
// so every row count around the tile boundary is compared bitwise against
// the serial single-sample reference — and against the same rows computed
// inside a full tile via a padded operand.
TEST(Mat, MatmulNtTailRowsMatchTiledBitwise) {
  const Mat b = random_mat(5, 3, 90);
  for (const std::size_t rows : {1u, 2u, 3u, 5u, 6u, 7u, 9u}) {
    const Mat a = random_mat(rows, 3, 100 + rows);
    const Mat c = matmul_nt(a, b);
    // Serial reference: row i is exactly b.matvec(row i of a).
    for (std::size_t i = 0; i < rows; ++i) {
      const Vec expect = b.matvec(a.row(i));
      for (std::size_t j = 0; j < b.rows(); ++j) {
        EXPECT_EQ(c(i, j), expect[j]) << "rows=" << rows << " i=" << i;
      }
    }
    // Padded operand: the same leading rows now run through the 4-row tile.
    const std::size_t padded_rows = ((rows + 3) / 4) * 4;
    Mat padded(padded_rows, 3);
    std::copy(a.data().begin(), a.data().end(), padded.data().begin());
    const Mat c_padded = matmul_nt(padded, b);
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < b.rows(); ++j) {
        EXPECT_EQ(c(i, j), c_padded(i, j)) << "rows=" << rows << " i=" << i;
      }
    }
  }
}

TEST(Mat, MatmulTailRowsMatchTiledBitwise) {
  const Mat b = random_mat(3, 4, 91);
  for (const std::size_t rows : {1u, 2u, 3u, 5u, 6u, 7u, 9u}) {
    const Mat a = random_mat(rows, 3, 200 + rows);
    const Mat c = matmul(a, b);
    for (std::size_t i = 0; i < rows; ++i) {
      const Vec expect = b.matvec_transposed(a.row(i));
      for (std::size_t j = 0; j < b.cols(); ++j) {
        EXPECT_EQ(c(i, j), expect[j]) << "rows=" << rows << " i=" << i;
      }
    }
    const std::size_t padded_rows = ((rows + 3) / 4) * 4;
    Mat padded(padded_rows, 3);
    std::copy(a.data().begin(), a.data().end(), padded.data().begin());
    const Mat c_padded = matmul(padded, b);
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < b.cols(); ++j) {
        EXPECT_EQ(c(i, j), c_padded(i, j)) << "rows=" << rows << " i=" << i;
      }
    }
  }
}

TEST(Mat, AddMatmulTnTailSamplesMatchSerialBitwise) {
  // The n-dimension (samples) is the accumulation order here, so the pin is
  // against the serial add_outer chain at every count around the tile edge.
  for (const std::size_t samples : {1u, 2u, 3u, 5u, 6u, 7u, 9u}) {
    const Mat a = random_mat(samples, 3, 300 + samples);
    const Mat b = random_mat(samples, 4, 400 + samples);
    Mat serial(3, 4, 0.25);
    for (std::size_t n = 0; n < samples; ++n) {
      serial.add_outer(a.row(n), b.row(n));
    }
    Mat batched(3, 4, 0.25);
    add_matmul_tn(batched, a, b);
    EXPECT_EQ(serial.data(), batched.data()) << "samples=" << samples;
  }
}

TEST(Mat, BatchedKernelsDegenerateShapes) {
  // 1-col outputs, 1-row inputs, and inner dimension 1: every degenerate
  // edge still matches the serial reference bitwise.
  const Mat a1 = random_mat(1, 4, 500);   // single sample
  const Mat b1 = random_mat(1, 4, 501);   // single output element (nt)
  const Mat c_nt = matmul_nt(a1, b1);
  ASSERT_EQ(c_nt.rows(), 1u);
  ASSERT_EQ(c_nt.cols(), 1u);
  EXPECT_EQ(c_nt(0, 0), b1.matvec(a1.row(0))[0]);

  const Mat bcol = random_mat(4, 1, 502);  // 1-col B
  const Mat c_col = matmul(a1, bcol);
  ASSERT_EQ(c_col.cols(), 1u);
  EXPECT_EQ(c_col(0, 0), bcol.matvec_transposed(a1.row(0))[0]);

  const Mat ak1 = random_mat(5, 1, 503);  // inner dimension 1
  const Mat bk1 = random_mat(3, 1, 504);
  const Mat c_k1 = matmul_nt(ak1, bk1);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(c_k1(i, j), bk1.matvec(ak1.row(i))[j]);
    }
  }

  Mat acc(1, 1, -0.5);  // 1x1 accumulator
  const Mat at = random_mat(5, 1, 505);
  const Mat bt = random_mat(5, 1, 506);
  Mat acc_serial(1, 1, -0.5);
  for (std::size_t n = 0; n < 5; ++n) {
    acc_serial.add_outer(at.row(n), bt.row(n));
  }
  add_matmul_tn(acc, at, bt);
  EXPECT_EQ(acc(0, 0), acc_serial(0, 0));
}

/// Two layers built from the same seed have identical weights; run B
/// samples through one with single-sample calls and through the other with
/// one batched call, and demand bitwise-equal outputs, parameter gradients,
/// and input gradients.
template <typename MakeLayer>
void check_batched_matches_single(MakeLayer make, std::size_t in_dim,
                                  std::size_t batch) {
  util::Rng rng_single(2024);
  util::Rng rng_batch(2024);
  auto single = make(rng_single);
  auto batched = make(rng_batch);

  util::Rng data_rng(7);
  Mat x(batch, in_dim);
  for (double& v : x.data()) v = data_rng.uniform(-1.0, 1.0);
  Mat dy(batch, single->out_dim());
  for (double& v : dy.data()) v = data_rng.uniform(-1.0, 1.0);

  // infer() must agree with forward().
  {
    const Vec x0(x.row(0).begin(), x.row(0).end());
    EXPECT_EQ(single->infer(x0), single->forward(x0));
  }

  single->zero_grad();
  batched->zero_grad();
  Mat dx_single(batch, in_dim);
  for (std::size_t nidx = 0; nidx < batch; ++nidx) {
    const Vec xn(x.row(nidx).begin(), x.row(nidx).end());
    const Vec yn = single->forward(xn);
    const Vec dyn(dy.row(nidx).begin(), dy.row(nidx).end());
    const Vec dxn = single->backward(dyn);
    std::copy(dxn.begin(), dxn.end(), dx_single.row(nidx).begin());
    (void)yn;
  }
  const Mat y_batch = batched->forward_batch(x);
  const Mat dx_batch = batched->backward_batch(dy);

  // Outputs bitwise-identical to per-sample forward.
  for (std::size_t nidx = 0; nidx < batch; ++nidx) {
    const Vec xn(x.row(nidx).begin(), x.row(nidx).end());
    const Vec yn = single->forward(xn);
    for (std::size_t j = 0; j < yn.size(); ++j) {
      EXPECT_EQ(y_batch(nidx, j), yn[j]) << "sample " << nidx;
    }
  }
  EXPECT_EQ(dx_single.data(), dx_batch.data());
  auto ps = single->params();
  auto pb = batched->params();
  ASSERT_EQ(ps.size(), pb.size());
  for (std::size_t p = 0; p < ps.size(); ++p) {
    EXPECT_EQ(ps[p].grad->data(), pb[p].grad->data()) << "param " << p;
  }
}

TEST(BatchedLayers, DenseMatchesSingle) {
  check_batched_matches_single(
      [](util::Rng& rng) {
        return std::make_unique<Dense>(5, 4, Activation::kTanh, rng);
      },
      5, 6);
}

TEST(BatchedLayers, DenseReluMatchesSingle) {
  check_batched_matches_single(
      [](util::Rng& rng) {
        return std::make_unique<Dense>(6, 3, Activation::kRelu, rng);
      },
      6, 4);
}

TEST(BatchedLayers, Conv1DMatchesSingle) {
  check_batched_matches_single(
      [](util::Rng& rng) {
        return std::make_unique<Conv1D>(8, 3, 4, Activation::kRelu, rng);
      },
      8, 5);
}

TEST(BatchedLayers, SimpleRnnMatchesSingle) {
  check_batched_matches_single(
      [](util::Rng& rng) { return std::make_unique<SimpleRnn>(8, 4, rng); },
      8, 5);
}

TEST(BatchedLayers, LstmMatchesSingle) {
  check_batched_matches_single(
      [](util::Rng& rng) { return std::make_unique<Lstm>(8, 4, rng); }, 8,
      5);
}

TEST(Conv1D, RejectsBadKernel) {
  util::Rng rng(11);
  EXPECT_THROW(Conv1D(4, 2, 5, Activation::kRelu, rng),
               std::invalid_argument);
  EXPECT_THROW(Conv1D(4, 2, 0, Activation::kRelu, rng),
               std::invalid_argument);
}

TEST(Layers, ForwardRejectsWrongSize) {
  util::Rng rng(12);
  Dense dense(3, 2, Activation::kRelu, rng);
  EXPECT_THROW(dense.forward({1.0, 2.0}), std::invalid_argument);
  SimpleRnn rnn(4, 3, rng);
  EXPECT_THROW(rnn.forward({1.0}), std::invalid_argument);
  Lstm lstm(4, 3, rng);
  EXPECT_THROW(lstm.forward({1.0}), std::invalid_argument);
}

// ---- optimizers -----------------------------------------------------------------

TEST(Adam, MinimizesQuadratic) {
  // One 1x1 "weight" minimizing (w - 3)^2.
  Mat w(1, 1, 0.0);
  Mat g(1, 1, 0.0);
  Adam adam(0.1);
  for (int i = 0; i < 300; ++i) {
    g(0, 0) = 2.0 * (w(0, 0) - 3.0);
    adam.step({{&w, &g}});
  }
  EXPECT_NEAR(w(0, 0), 3.0, 1e-2);
}

TEST(RmsProp, MinimizesQuadratic) {
  Mat w(1, 1, 10.0);
  Mat g(1, 1, 0.0);
  RmsProp rms(0.05);
  for (int i = 0; i < 2000; ++i) {
    g(0, 0) = 2.0 * (w(0, 0) - 3.0);
    rms.step({{&w, &g}});
  }
  EXPECT_NEAR(w(0, 0), 3.0, 0.1);
}

TEST(Adam, ZeroesGradientsAfterStep) {
  Mat w(2, 2, 1.0);
  Mat g(2, 2, 5.0);
  Adam adam(0.01);
  adam.step({{&w, &g}});
  for (double v : g.data()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Optimizer, ClipGlobalNormScales) {
  Mat w(1, 2);
  Mat g(1, 2);
  g(0, 0) = 3.0;
  g(0, 1) = 4.0;  // norm 5
  std::vector<ParamRef> params = {{&w, &g}};
  Optimizer::clip_global_norm(params, 1.0);
  EXPECT_NEAR(g(0, 0), 0.6, 1e-12);
  EXPECT_NEAR(g(0, 1), 0.8, 1e-12);
  // Below the cap: unchanged.
  Optimizer::clip_global_norm(params, 10.0);
  EXPECT_NEAR(g(0, 0), 0.6, 1e-12);
}

// ---- ArchSpec / ActorCriticNet ---------------------------------------------------

StateSignature pensieve_signature() {
  // last_quality, buffer (scalars); throughput, download (8-vectors);
  // next sizes (6-vector); chunks left (scalar).
  StateSignature sig;
  sig.row_lengths = {1, 1, 8, 8, 6, 1};
  return sig;
}

TEST(ArchSpec, PensieveDefaultValid) {
  EXPECT_NO_THROW(validate_spec(ArchSpec::pensieve(), pensieve_signature()));
}

TEST(ArchSpec, KernelTooLargeRejected) {
  ArchSpec spec = ArchSpec::pensieve();
  spec.conv_kernel = 7;  // shortest vector row is 6
  EXPECT_THROW(validate_spec(spec, pensieve_signature()), ArchError);
}

TEST(ArchSpec, ZeroWidthRejected) {
  ArchSpec spec = ArchSpec::pensieve();
  spec.merge_hidden = 0;
  EXPECT_THROW(validate_spec(spec, pensieve_signature()), ArchError);
}

TEST(ArchSpec, OversizedWidthRejected) {
  ArchSpec spec = ArchSpec::pensieve();
  spec.merge_hidden = 4096;
  EXPECT_THROW(validate_spec(spec, pensieve_signature()), ArchError);
}

TEST(ArchSpec, TooManyMergeLayersRejected) {
  ArchSpec spec = ArchSpec::pensieve();
  spec.merge_layers = 5;
  EXPECT_THROW(validate_spec(spec, pensieve_signature()), ArchError);
}

TEST(ArchSpec, ZeroRnnHiddenRejected) {
  ArchSpec spec = ArchSpec::pensieve();
  spec.temporal = TemporalUnit::kRnn;
  spec.rnn_hidden = 0;
  EXPECT_THROW(validate_spec(spec, pensieve_signature()), ArchError);
}

TEST(ArchSpec, DescribeMentionsUnit) {
  ArchSpec spec = ArchSpec::pensieve();
  spec.temporal = TemporalUnit::kLstm;
  EXPECT_NE(spec.describe().find("lstm"), std::string::npos);
}

class NetVariantTest
    : public ::testing::TestWithParam<std::tuple<TemporalUnit, bool>> {};

TEST_P(NetVariantTest, ForwardBackwardRuns) {
  const auto [unit, shared] = GetParam();
  ArchSpec spec = ArchSpec::pensieve();
  spec.temporal = unit;
  spec.shared_trunk = shared;
  spec.conv_filters = 8;
  spec.rnn_hidden = 8;
  spec.scalar_hidden = 8;
  spec.merge_hidden = 8;
  util::Rng rng(13);
  ActorCriticNet net(spec, pensieve_signature(), 6, rng);

  std::vector<Vec> rows = {{0.3},
                           {0.9},
                           {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8},
                           {0.2, 0.2, 0.3, 0.1, 0.4, 0.2, 0.3, 0.2},
                           {0.1, 0.2, 0.4, 0.7, 1.1, 1.7},
                           {0.5}};
  const auto out = net.forward(rows);
  ASSERT_EQ(out.probs.size(), 6u);
  double total = 0.0;
  for (double p : out.probs) {
    EXPECT_GT(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_TRUE(std::isfinite(out.value));

  Vec dlogits(6, 0.1);
  dlogits[2] = -0.5;
  EXPECT_NO_THROW(net.backward(dlogits, 0.7));
  // Gradients should be nonzero somewhere.
  double grad_norm = 0.0;
  for (auto& p : net.params()) {
    for (double g : p.grad->data()) grad_norm += g * g;
  }
  EXPECT_GT(grad_norm, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, NetVariantTest,
    ::testing::Combine(::testing::Values(TemporalUnit::kConv1D,
                                         TemporalUnit::kRnn,
                                         TemporalUnit::kLstm,
                                         TemporalUnit::kDense),
                       ::testing::Bool()),
    [](const testing::TestParamInfo<std::tuple<TemporalUnit, bool>>& info) {
      return std::string(temporal_unit_name(std::get<0>(info.param))) +
             (std::get<1>(info.param) ? "_shared" : "_separate");
    });

class NetBatchedVariantTest
    : public ::testing::TestWithParam<std::tuple<TemporalUnit, bool>> {};

TEST_P(NetBatchedVariantTest, BatchedMatchesSingleBitwise) {
  const auto [unit, shared] = GetParam();
  ArchSpec spec = ArchSpec::pensieve();
  spec.temporal = unit;
  spec.shared_trunk = shared;
  spec.conv_filters = 8;
  spec.rnn_hidden = 8;
  spec.scalar_hidden = 8;
  spec.merge_hidden = 8;
  util::Rng rng_single(99);
  util::Rng rng_batch(99);
  util::Rng rng_capture(99);
  ActorCriticNet single(spec, pensieve_signature(), 6, rng_single);
  ActorCriticNet batched(spec, pensieve_signature(), 6, rng_batch);
  ActorCriticNet captured(spec, pensieve_signature(), 6, rng_capture);
  captured.sync_inference_cache();  // capture runs on the fast path

  util::Rng data_rng(3);
  const std::size_t batch = 5;
  std::vector<std::vector<Vec>> samples(batch);
  for (auto& sample : samples) {
    for (std::size_t len : pensieve_signature().row_lengths) {
      Vec row(std::max<std::size_t>(len, 1));
      for (double& v : row) v = data_rng.uniform(-1.0, 1.0);
      sample.push_back(std::move(row));
    }
  }
  Mat dlogits(batch, 6);
  for (double& v : dlogits.data()) v = data_rng.uniform(-0.5, 0.5);
  Vec dvalues(batch);
  for (double& v : dvalues) v = data_rng.uniform(-0.5, 0.5);

  // Single path: interleaved forward/backward per sample, as the serial
  // trainer's gradient loop does.
  single.zero_grad();
  std::vector<ActorCriticNet::Output> single_outs;
  for (std::size_t b = 0; b < batch; ++b) {
    single_outs.push_back(single.forward(samples[b]));
    const Vec db(dlogits.row(b).begin(), dlogits.row(b).end());
    single.backward(db, dvalues[b]);
  }
  batched.zero_grad();
  const auto batch_out = batched.forward_batch(samples);
  batched.backward_batch(dlogits, dvalues);

  // Capture path: forward one row at a time (as the rollout does), then a
  // single backward over the captured caches.
  captured.zero_grad();
  captured.begin_batch_capture(batch);
  std::vector<ActorCriticNet::Output> capture_outs;
  for (std::size_t b = 0; b < batch; ++b) {
    capture_outs.push_back(captured.forward_capture(samples[b], b));
  }
  captured.backward_batch(dlogits, dvalues);

  for (std::size_t b = 0; b < batch; ++b) {
    EXPECT_EQ(batch_out.probs[b], single_outs[b].probs);  // bitwise
    EXPECT_EQ(batch_out.values[b], single_outs[b].value);
    EXPECT_EQ(capture_outs[b].probs, single_outs[b].probs);
    EXPECT_EQ(capture_outs[b].value, single_outs[b].value);
    // forward_inference must agree as well (it shares the fast path).
    const auto inference = captured.forward_inference(samples[b]);
    EXPECT_EQ(inference.probs, single_outs[b].probs);
    EXPECT_EQ(inference.value, single_outs[b].value);
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_EQ(batch_out.logits(b, j), single_outs[b].logits[j]);
    }
  }
  auto ps = single.params();
  auto pb = batched.params();
  auto pc = captured.params();
  ASSERT_EQ(ps.size(), pb.size());
  ASSERT_EQ(ps.size(), pc.size());
  for (std::size_t p = 0; p < ps.size(); ++p) {
    EXPECT_EQ(ps[p].grad->data(), pb[p].grad->data()) << "param " << p;
    EXPECT_EQ(ps[p].grad->data(), pc[p].grad->data()) << "param " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, NetBatchedVariantTest,
    ::testing::Combine(::testing::Values(TemporalUnit::kConv1D,
                                         TemporalUnit::kRnn,
                                         TemporalUnit::kLstm,
                                         TemporalUnit::kDense),
                       ::testing::Bool()),
    [](const testing::TestParamInfo<std::tuple<TemporalUnit, bool>>& info) {
      return std::string(temporal_unit_name(std::get<0>(info.param))) +
             (std::get<1>(info.param) ? "_shared" : "_separate");
    });

TEST(ActorCriticNet, BatchedRejectsEmptyAndMalformedBatches) {
  ArchSpec spec = ArchSpec::pensieve();
  spec.conv_filters = 4;
  spec.scalar_hidden = 4;
  spec.merge_hidden = 4;
  util::Rng rng(5);
  StateSignature sig;
  sig.row_lengths = {1, 8};
  ActorCriticNet net(spec, sig, 3, rng);
  EXPECT_THROW((void)net.forward_batch({}), std::invalid_argument);
  std::vector<std::vector<Vec>> bad_rows = {{{0.1}}};
  EXPECT_THROW((void)net.forward_batch(bad_rows), std::invalid_argument);
}

TEST(ActorCriticNet, WholeNetGradientCheck) {
  // End-to-end gradient check through branches, merge, and actor head via
  // a loss over logits and value.
  ArchSpec spec = ArchSpec::pensieve();
  spec.conv_filters = 4;
  spec.scalar_hidden = 4;
  spec.merge_hidden = 6;
  spec.activation = Activation::kTanh;
  util::Rng rng(14);
  StateSignature sig;
  sig.row_lengths = {1, 8};
  ActorCriticNet net(spec, sig, 3, rng);

  const std::vector<Vec> rows = {{0.4},
                                 {0.1, -0.2, 0.3, 0.25, -0.15, 0.05, 0.4,
                                  -0.3}};
  const Vec w_logit = {0.3, -0.7, 0.5};
  const double w_value = 0.9;
  auto loss = [&] {
    const auto out = net.forward(rows);
    return dot(out.logits, w_logit) + w_value * out.value;
  };

  net.zero_grad();
  (void)net.forward(rows);
  net.backward(w_logit, w_value);

  const double eps = 1e-6;
  auto params = net.params();
  std::size_t checked = 0;
  for (auto& p : params) {
    auto& values = p.value->data();
    auto& grads = p.grad->data();
    const std::size_t stride = std::max<std::size_t>(values.size() / 8, 1);
    for (std::size_t j = 0; j < values.size(); j += stride) {
      const double saved = values[j];
      values[j] = saved + eps;
      const double up = loss();
      values[j] = saved - eps;
      const double down = loss();
      values[j] = saved;
      EXPECT_NEAR(grads[j], (up - down) / (2 * eps), 1e-5);
      ++checked;
    }
  }
  EXPECT_GT(checked, 20u);
}

TEST(ActorCriticNet, WeightsRoundtrip) {
  ArchSpec spec = ArchSpec::pensieve();
  spec.conv_filters = 8;
  spec.scalar_hidden = 8;
  spec.merge_hidden = 8;
  util::Rng rng(15);
  ActorCriticNet a(spec, pensieve_signature(), 6, rng);
  ActorCriticNet b(spec, pensieve_signature(), 6, rng);

  const Vec weights = a.get_weights();
  EXPECT_EQ(weights.size(), a.num_params());
  b.set_weights(weights);

  const std::vector<Vec> rows = {{0.3},
                                 {0.9},
                                 {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8},
                                 {0.2, 0.2, 0.3, 0.1, 0.4, 0.2, 0.3, 0.2},
                                 {0.1, 0.2, 0.4, 0.7, 1.1, 1.7},
                                 {0.5}};
  const auto oa = a.forward(rows);
  const auto ob = b.forward(rows);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(oa.probs[i], ob.probs[i]);
  }
  EXPECT_DOUBLE_EQ(oa.value, ob.value);
}

TEST(ActorCriticNet, SetWeightsRejectsWrongLength) {
  util::Rng rng(16);
  ArchSpec spec = ArchSpec::pensieve();
  spec.conv_filters = 8;
  spec.scalar_hidden = 8;
  spec.merge_hidden = 8;
  ActorCriticNet net(spec, pensieve_signature(), 6, rng);
  Vec too_short(3, 0.0);
  EXPECT_THROW(net.set_weights(too_short), std::invalid_argument);
}

TEST(ActorCriticNet, RowMismatchThrows) {
  util::Rng rng(17);
  ArchSpec spec = ArchSpec::pensieve();
  spec.conv_filters = 8;
  spec.scalar_hidden = 8;
  spec.merge_hidden = 8;
  ActorCriticNet net(spec, pensieve_signature(), 6, rng);
  EXPECT_THROW(net.forward({{0.1}}), std::invalid_argument);
  std::vector<Vec> bad_rows = {{0.3}, {0.9}, {0.1, 0.2}, {0.2},
                               {0.1}, {0.5}};
  EXPECT_THROW(net.forward(bad_rows), std::invalid_argument);
}

TEST(ActorCriticNet, FewerThanTwoActionsRejected) {
  util::Rng rng(18);
  EXPECT_THROW(
      ActorCriticNet(ArchSpec::pensieve(), pensieve_signature(), 1, rng),
      ArchError);
}

// ---- classifiers ------------------------------------------------------------------

TEST(Conv1DClassifier, LearnsRisingVsFalling) {
  util::Rng rng(19);
  Conv1DClassifier clf(16, 8, 5, 8, rng);
  std::vector<Vec> xs;
  std::vector<double> ys;
  for (int i = 0; i < 200; ++i) {
    Vec x(16);
    const bool rising = i % 2 == 0;
    for (int t = 0; t < 16; ++t) {
      const double base = rising ? t / 16.0 : 1.0 - t / 16.0;
      x[t] = base + rng.normal(0.0, 0.05);
    }
    xs.push_back(std::move(x));
    ys.push_back(rising ? 1.0 : 0.0);
  }
  ClassifierTrainOptions opts;
  opts.epochs = 40;
  clf.train(xs, ys, opts);

  int correct = 0;
  for (int i = 0; i < 200; ++i) {
    const double p = clf.predict(xs[i]);
    if ((p > 0.5) == (ys[i] > 0.5)) ++correct;
  }
  EXPECT_GT(correct, 180);
}

TEST(MlpClassifier, LearnsLinearlySeparable) {
  util::Rng rng(20);
  MlpClassifier clf(4, {8}, rng);
  std::vector<Vec> xs;
  std::vector<double> ys;
  for (int i = 0; i < 300; ++i) {
    Vec x(4);
    for (double& v : x) v = rng.uniform(-1.0, 1.0);
    const double margin = x[0] + 0.5 * x[1] - 0.8 * x[2];
    if (std::abs(margin) < 0.2) continue;  // keep a margin
    xs.push_back(x);
    ys.push_back(margin > 0 ? 1.0 : 0.0);
  }
  ClassifierTrainOptions opts;
  opts.epochs = 60;
  clf.train(xs, ys, opts);
  int correct = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if ((clf.predict(xs[i]) > 0.5) == (ys[i] > 0.5)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / xs.size(), 0.92);
}

TEST(Classifier, SoftLabelsAccepted) {
  util::Rng rng(21);
  MlpClassifier clf(2, {4}, rng);
  const std::vector<Vec> xs = {{0.0, 1.0}, {1.0, 0.0}};
  const std::vector<double> ys = {0.8, 0.2};
  ClassifierTrainOptions opts;
  opts.epochs = 5;
  EXPECT_NO_THROW(clf.train(xs, ys, opts));
}

TEST(Classifier, RejectsBadLabels) {
  util::Rng rng(22);
  MlpClassifier clf(2, {4}, rng);
  const std::vector<Vec> xs = {{0.0, 1.0}};
  ClassifierTrainOptions opts;
  EXPECT_THROW(clf.train(xs, {1.5}, opts), std::invalid_argument);
  EXPECT_THROW(clf.train(xs, {-0.1}, opts), std::invalid_argument);
  EXPECT_THROW(clf.train({}, {}, opts), std::invalid_argument);
}

TEST(Classifier, PredictRejectsWrongDim) {
  util::Rng rng(23);
  MlpClassifier clf(3, {4}, rng);
  EXPECT_THROW(clf.predict({1.0}), std::invalid_argument);
  Conv1DClassifier c2(8, 4, 3, 4, rng);
  EXPECT_THROW(c2.predict({1.0, 2.0}), std::invalid_argument);
}

TEST(Classifier, PredictIsConstAndStable) {
  // predict() runs a cache-free inference path: it is callable through a
  // const reference and repeated calls return the same score.
  util::Rng rng(24);
  MlpClassifier mlp(2, {4}, rng);
  const BinaryClassifier& mlp_ref = mlp;
  const double m1 = mlp_ref.predict({0.3, -0.2});
  EXPECT_EQ(m1, mlp_ref.predict({0.3, -0.2}));

  Conv1DClassifier cnn(8, 4, 3, 4, rng);
  const BinaryClassifier& cnn_ref = cnn;
  const Vec x = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8};
  const double c1 = cnn_ref.predict(x);
  EXPECT_EQ(c1, cnn_ref.predict(x));
  EXPECT_GT(c1, 0.0);
  EXPECT_LT(c1, 1.0);
}

}  // namespace
}  // namespace nada::nn

// The observability layer's contracts:
//
//   * MetricsRegistry: stable instrument handles, correct counter/gauge/
//     histogram arithmetic, deterministic JSON snapshots,
//   * ScopedTimer: records wall-clock into a histogram, free when null,
//   * util::format_duration: one human-readable formatter across scales
//     (the StreamObserver "1.2e-05s" fix and the status snapshots share it),
//   * MetricsObserver: its counters agree exactly with a RecordingObserver
//     on the same job — including the pooled serial-probe path
//     (probe_batch == false), where candidate events arrive from
//     ThreadPool threads and every one must be serialized, none dropped,
//   * TraceSink: one valid JSONL line per dispatched event, monotone seq,
//   * StatusWriter: atomic snapshots with the documented schema, plus the
//     driver-side read/aggregate path,
//   * THE invariant: a streaming, store-backed, 3-shard search with
//     metrics + trace + status sinks attached produces bit-identical
//     rankings and journal record sets to the same search run silent.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "env/abr_domain.h"
#include "gen/state_gen.h"
#include "obs/metrics.h"
#include "obs/metrics_observer.h"
#include "obs/scoped_timer.h"
#include "obs/status.h"
#include "obs/trace_sink.h"
#include "search/candidate.h"
#include "search/observer.h"
#include "search/search_job.h"
#include "search/shard_runner.h"
#include "trace/generator.h"
#include "util/fs.h"
#include "util/json.h"
#include "util/strings.h"
#include "util/thread_pool.h"
#include "video/video.h"

namespace nada::obs {
namespace {

std::string fresh_path(const std::string& tag) {
  const std::string path = ::testing::TempDir() + "nada_obs_" + tag;
  std::remove(path.c_str());
  return path;
}

// ---- MetricsRegistry --------------------------------------------------------

TEST(MetricsRegistry, InstrumentsAccumulateAndHandlesAreStable) {
  MetricsRegistry registry;
  Counter& hits = registry.counter("store.lookup_hits");
  hits.add();
  hits.add(4);
  EXPECT_EQ(registry.counter("store.lookup_hits").value(), 5u);
  EXPECT_EQ(&registry.counter("store.lookup_hits"), &hits);

  registry.gauge("search.rate.cache_hit").set(0.25);
  EXPECT_DOUBLE_EQ(registry.gauge("search.rate.cache_hit").value(), 0.25);

  const double bounds[] = {1.0, 10.0};
  Histogram& h = registry.histogram("custom.seconds", bounds);
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 55.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 50.0);
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 3u);  // two bounds + overflow
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  // NaN observations are dropped, not propagated into sum/min/max.
  h.observe(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.count(), 3u);
}

TEST(MetricsRegistry, SnapshotShapeAndDeterminism) {
  MetricsRegistry registry;
  registry.counter("b.counter").add(2);
  registry.counter("a.counter").add(1);
  registry.gauge("g").set(1.5);
  registry.histogram("h").observe(0.002);

  const util::JsonValue snap = registry.snapshot();
  ASSERT_EQ(snap.type(), util::JsonValue::Type::kObject);
  EXPECT_EQ(snap.get("counters").get("a.counter").as_number(), 1.0);
  EXPECT_EQ(snap.get("counters").get("b.counter").as_number(), 2.0);
  EXPECT_DOUBLE_EQ(snap.get("gauges").get("g").as_number(), 1.5);
  const util::JsonValue& hist = snap.get("histograms").get("h");
  EXPECT_EQ(hist.get("count").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(hist.get("sum").as_number(), 0.002);
  ASSERT_GT(hist.get("buckets").size(), 0u);
  // Last bucket is the +inf overflow, encoded as the string "inf".
  const util::JsonValue& last =
      hist.get("buckets").at(hist.get("buckets").size() - 1);
  EXPECT_EQ(last.get("le").as_string(), "inf");

  // Equal state dumps to equal bytes (sorted keys), and the dump parses.
  EXPECT_EQ(snap.dump(), registry.snapshot().dump());
  EXPECT_NO_THROW(util::JsonValue::parse(snap.dump()));
}

TEST(ScopedTimer, RecordsIntoHistogramAndIsNullSafe) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("t.seconds");
  {
    ScopedTimer timer(&h);
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 0.0);

  ScopedTimer explicit_stop(&h);
  const double first = explicit_stop.stop();
  EXPECT_GE(first, 0.0);
  explicit_stop.stop();     // idempotent: no second observation
  EXPECT_EQ(h.count(), 2u);

  ScopedTimer noop(nullptr);  // must not crash on scope exit
  EXPECT_EQ(maybe_histogram(nullptr, "x"), nullptr);
  EXPECT_EQ(maybe_counter(nullptr, "x"), nullptr);
}

TEST(FormatDuration, HumanReadableAcrossScales) {
  EXPECT_EQ(util::format_duration(1.2e-05), "0.012ms");  // not "1.2e-05s"
  EXPECT_EQ(util::format_duration(0.0234), "23.4ms");
  EXPECT_EQ(util::format_duration(1.53), "1.53s");
  EXPECT_EQ(util::format_duration(125.0), "2m05s");
  EXPECT_EQ(util::format_duration(3720.0), "1h02m");
  EXPECT_EQ(util::format_duration(std::nan("")), "nan");
}

// ---- search fixtures --------------------------------------------------------

search::SearchConfig fast_config(std::size_t window) {
  search::SearchConfig config;
  config.num_candidates = 24;
  config.early_epochs = 4;
  config.full_train_top = 2;
  config.seeds = 1;
  config.train.epochs = 8;
  config.train.test_interval = 4;
  config.train.max_eval_traces = 2;
  config.window_size = window;
  nn::ArchSpec arch = nn::ArchSpec::pensieve();
  arch.conv_filters = 8;
  arch.scalar_hidden = 8;
  arch.merge_hidden = 16;
  config.baseline_arch = arch;
  return config;
}

struct Fixture {
  trace::Dataset dataset =
      trace::build_dataset(trace::Environment::k4G, 0.05, 21);
  video::Video video = video::make_test_video(video::youtube_ladder(), 42);
  env::AbrDomain domain{dataset, video};
  util::ThreadPool pool{8};
};

/// Runs one state search with the given observers attached (store-less).
search::SearchResult run_observed(Fixture& fx,
                                  const search::SearchConfig& config,
                                  const std::vector<search::Observer*>& obs,
                                  MetricsRegistry* metrics = nullptr) {
  gen::StateGenerator generator(gen::gpt4_profile(), gen::PromptStrategy{},
                                77);
  search::StateCandidateSource source(generator);
  search::JobOptions options;
  options.pool = &fx.pool;
  options.metrics = metrics;
  search::SearchJob job(fx.domain, config, 1234, source,
                        search::FixedDesign{nullptr, &config.baseline_arch},
                        options);
  for (search::Observer* o : obs) job.add_observer(o);
  return job.run_to_completion();
}

std::uint64_t counter_value(MetricsRegistry& registry,
                            const std::string& name) {
  return registry.counter(name).value();
}

// ---- MetricsObserver vs RecordingObserver ----------------------------------

/// The dispatch-integrity contract on the pooled serial-probe path
/// (probe_batch == false): candidate events fire from ThreadPool threads,
/// the job serializes them, and the metrics fold sees every single one —
/// counts agree exactly with the recording observer, batch and streaming.
TEST(MetricsObserver, AgreesWithRecordingOnPooledSerialProbes) {
  Fixture fx;
  for (const std::size_t window : {std::size_t{0}, std::size_t{5}}) {
    SCOPED_TRACE("window=" + std::to_string(window));
    search::SearchConfig config = fast_config(window);
    config.probe_batch = false;  // serial per-candidate trainers on the pool

    MetricsRegistry registry;
    MetricsObserver metrics(registry);
    search::RecordingObserver recording;
    const auto result = run_observed(fx, config, {&metrics, &recording});

    using E = search::CandidateEventType;
    EXPECT_EQ(result.n_total, config.num_candidates);
    // None dropped: every candidate entered exactly once...
    EXPECT_EQ(recording.count(E::kEntered), config.num_candidates);
    // ...and the metrics fold saw the identical event multiset.
    EXPECT_EQ(counter_value(registry, "search.candidates.entered"),
              recording.count(E::kEntered));
    EXPECT_EQ(counter_value(registry, "search.candidates.failed"),
              recording.count(E::kFailed));
    EXPECT_EQ(counter_value(registry, "search.candidates.probed"),
              recording.count(E::kProbed));
    EXPECT_EQ(counter_value(registry, "search.candidates.early_stopped"),
              recording.count(E::kEarlyStopped));
    EXPECT_EQ(counter_value(registry, "search.candidates.trained"),
              recording.count(E::kTrained));
    EXPECT_EQ(counter_value(registry, "search.candidates.probed"),
              result.n_probes_run);

    // Stage executions line up with the recorded stage events (streaming
    // cycles generate/precheck/probe once per window).
    std::size_t probe_finishes = 0;
    for (const auto& event : recording.finished) {
      if (event.stage == search::StageKind::kProbe) ++probe_finishes;
    }
    EXPECT_EQ(counter_value(registry, "search.stage.probe.runs"),
              probe_finishes);
    EXPECT_EQ(registry.histogram("search.stage.probe.seconds").count(),
              probe_finishes);

    EXPECT_EQ(counter_value(registry, "search.windows.completed"),
              recording.windows.size());
    EXPECT_DOUBLE_EQ(registry.gauge("search.progress.stream_position").value(),
                     static_cast<double>(config.num_candidates));
    if (window != 0) {
      EXPECT_GT(recording.windows.size(), 1u);
    }
  }
}

// ---- TraceSink --------------------------------------------------------------

TEST(TraceSink, OneValidJsonLinePerEvent) {
  Fixture fx;
  const std::string path = fresh_path("trace.jsonl");
  search::RecordingObserver recording;
  std::uint64_t lines_written = 0;
  {
    TraceSink trace(path);
    run_observed(fx, fast_config(5), {&trace, &recording});
    lines_written = trace.lines_written();
  }

  std::vector<std::string> lines;
  std::istringstream in(util::read_file(path));
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) lines.push_back(line);
  }
  const std::size_t dispatched =
      recording.started.size() + recording.finished.size() +
      recording.candidates.size() + recording.window_starts.size() +
      recording.windows.size();
  EXPECT_EQ(lines.size(), dispatched);
  EXPECT_EQ(lines_written, dispatched);

  double prev_seq = -1.0;
  for (const auto& line : lines) {
    util::JsonValue doc;
    ASSERT_NO_THROW(doc = util::JsonValue::parse(line)) << line;
    ASSERT_TRUE(doc.has("event")) << line;
    ASSERT_TRUE(doc.has("seq")) << line;
    ASSERT_TRUE(doc.has("ts_unix")) << line;
    EXPECT_GT(doc.get("seq").as_number(), prev_seq);
    prev_seq = doc.get("seq").as_number();
    const std::string& event = doc.get("event").as_string();
    if (event == "candidate") {
      EXPECT_TRUE(doc.has("type"));
      EXPECT_TRUE(doc.has("index"));
      EXPECT_TRUE(doc.has("id"));
    } else if (event == "stage" || event == "window") {
      EXPECT_TRUE(doc.has("seconds"));
    }
  }
}

// ---- StatusWriter -----------------------------------------------------------

TEST(StatusWriter, SnapshotSchemaRateLimitAndFinish) {
  const std::string path = fresh_path("status.json");
  StatusWriter writer(
      StatusConfig{path, "single", /*total_candidates=*/10,
                   /*min_interval_seconds=*/3600.0});
  writer.on_stage_start(search::StageKind::kGenerate);
  for (std::size_t i = 0; i < 5; ++i) {
    writer.on_candidate({search::CandidateEventType::kEntered,
                         search::StageKind::kGenerate, i, "cand", ""});
  }
  writer.on_stage_finish({search::StageKind::kGenerate, 0.25});
  writer.on_window_start(0, 0);
  writer.on_window_finish({0, 0, 5, 2, 0.5});

  // Mid-run snapshot: progress-bearing fields and an ETA.
  auto running = read_status(path);
  ASSERT_TRUE(running.has_value());
  EXPECT_EQ(running->state, "running");
  EXPECT_EQ(running->stream_position, 5u);
  EXPECT_TRUE(running->raw.has("eta_seconds"));
  EXPECT_TRUE(running->raw.has("pid"));

  writer.finish();
  // Rate-limited: ctor + 2 stage + 2 window boundaries + finish force a
  // write each; the 5 candidate events all fall inside the interval.
  EXPECT_EQ(writer.writes(), 6u);
  writer.finish();  // idempotent
  EXPECT_EQ(writer.writes(), 6u);

  const auto snapshot = read_status(path);
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_TRUE(snapshot->done());
  EXPECT_EQ(snapshot->label, "single");
  EXPECT_EQ(snapshot->stage, "generate");
  EXPECT_EQ(snapshot->total_candidates, 10u);
  EXPECT_EQ(snapshot->counter("entered"), 5u);
  EXPECT_EQ(snapshot->counter("windows"), 1u);
  EXPECT_GT(snapshot->heartbeat_unix, 0.0);
  // The human-readable elapsed uses the shared formatter (no raw doubles).
  EXPECT_TRUE(snapshot->raw.has("elapsed"));
  EXPECT_DOUBLE_EQ(
      snapshot->raw.get("stage_seconds").get("generate").as_number(), 0.25);
  EXPECT_DOUBLE_EQ(snapshot->raw.get("stage_runs").get("generate").as_number(),
                   1.0);
}

TEST(StatusWriter, MissingAndCorruptFilesReadAsAbsent) {
  EXPECT_FALSE(read_status(fresh_path("nonexistent.json")).has_value());
  const std::string path = fresh_path("corrupt.json");
  util::write_file_atomic(path, "{\"label\": torn-midwri");
  EXPECT_FALSE(read_status(path).has_value());
}

TEST(StatusAggregate, MergesReportingWorkersAndCountsMissing) {
  const std::string path_a = fresh_path("agg_a.json");
  const std::string path_b = fresh_path("agg_b.json");
  {
    StatusWriter a(StatusConfig{path_a, "worker-0/3", 30});
    a.on_candidate({search::CandidateEventType::kEntered,
                    search::StageKind::kGenerate, 9, "x", ""});
    a.finish();
    StatusWriter b(StatusConfig{path_b, "worker-1/3", 30});
    b.on_candidate({search::CandidateEventType::kEntered,
                    search::StageKind::kGenerate, 19, "y", ""});
    b.on_candidate({search::CandidateEventType::kFailed,
                    search::StageKind::kPrecheck, 19, "y", "boom"});
    b.finish();
  }
  std::vector<std::optional<StatusSnapshot>> workers;
  workers.push_back(read_status(path_a));
  workers.push_back(std::nullopt);  // worker 1 never reported
  workers.push_back(read_status(path_b));
  ASSERT_TRUE(workers[0].has_value());
  ASSERT_TRUE(workers[2].has_value());

  const util::JsonValue doc = aggregate_status(workers, unix_now());
  EXPECT_EQ(doc.get("kind").as_string(), "aggregate");
  EXPECT_EQ(doc.get("n_workers").as_number(), 3.0);
  EXPECT_EQ(doc.get("n_reporting").as_number(), 2.0);
  EXPECT_EQ(doc.get("n_done").as_number(), 2.0);
  EXPECT_EQ(doc.get("stream_position_total").as_number(), 30.0);
  EXPECT_EQ(doc.get("counters").get("entered").as_number(), 2.0);
  EXPECT_EQ(doc.get("counters").get("failed").as_number(), 1.0);
  EXPECT_GE(doc.get("heartbeat_age_max_seconds").as_number(), 0.0);
  ASSERT_EQ(doc.get("workers").size(), 3u);
  EXPECT_TRUE(doc.get("workers").at(1).is_null());
  EXPECT_EQ(doc.get("workers").at(2).get("label").as_string(), "worker-1/3");
  EXPECT_NO_THROW(util::JsonValue::parse(doc.dump()));
}

// ---- the pure-readout invariant, end to end --------------------------------

std::vector<std::string> sorted_lines(const std::string& path) {
  std::vector<std::string> lines;
  std::istringstream in(util::read_file(path));
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) lines.push_back(line);
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

using TrainedRow =
    std::tuple<std::size_t, std::string, double, std::vector<double>>;
std::vector<TrainedRow> trained_rows(const search::SearchResult& result) {
  std::vector<TrainedRow> rows;
  for (const auto& outcome : result.outcomes) {
    if (!outcome.fully_trained) continue;
    rows.emplace_back(outcome.stream_index, outcome.id, outcome.test_score,
                      outcome.early_rewards);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Removes any journals/snapshots a previous test invocation left in the
/// runner's store dir (a stale journal would serve the whole run from
/// cache and defeat the "sinks saw real work" assertions).
void clean_store_dir(const search::ShardRunner& runner) {
  for (std::size_t shard = 0; shard < runner.num_shards(); ++shard) {
    std::remove(runner.shard_store_path(shard).c_str());
    std::remove(runner.worker_status_path(shard).c_str());
  }
  std::remove(runner.merged_store_path().c_str());
  std::remove(runner.merged_status_path().c_str());
  std::remove(runner.aggregate_status_path().c_str());
}

/// One streaming 3-shard search over a fresh store dir: 3 worker passes
/// then the driver's merge+rank, all sinks from `observers` attached to
/// every job.
search::SearchResult run_sharded(const search::SearchConfig& config,
                                 search::ShardRunner& runner,
                                 const std::vector<search::Observer*>& obs) {
  for (std::size_t shard = 0; shard < runner.num_shards(); ++shard) {
    gen::StateGenerator generator(gen::gpt4_profile(), gen::PromptStrategy{},
                                  77);
    search::StateCandidateSource source(generator);
    runner.run_worker(shard, source,
                      search::FixedDesign{nullptr, &config.baseline_arch},
                      obs);
  }
  gen::StateGenerator generator(gen::gpt4_profile(), gen::PromptStrategy{},
                                77);
  search::StateCandidateSource source(generator);
  return runner.merge_and_rank(
      source, search::FixedDesign{nullptr, &config.baseline_arch}, nullptr,
      obs);
}

TEST(ObservabilityEquivalence, ShardedStreamingSinksMatchSilentRun) {
  Fixture fx;
  const search::SearchConfig config = fast_config(5);
  const std::size_t kShards = 3;

  // --- observed run: metrics + trace + per-worker status, all attached ---
  const std::string obs_dir = fresh_path("equiv_sinks");
  search::ShardRunnerConfig observed_shards;
  observed_shards.num_shards = kShards;
  observed_shards.store_dir = obs_dir;
  MetricsRegistry registry;
  observed_shards.metrics = &registry;  // worker_status stays default-on
  search::ShardRunner observed_runner(fx.domain, config, 1234,
                                      observed_shards, &fx.pool);
  clean_store_dir(observed_runner);
  MetricsObserver metrics(registry);
  const std::string trace_path = fresh_path("equiv_trace.jsonl");
  TraceSink trace(trace_path);
  const auto observed =
      run_sharded(config, observed_runner, {&metrics, &trace});

  // --- silent run: no sinks anywhere, fresh directory -------------------
  const std::string silent_dir = fresh_path("equiv_silent");
  search::ShardRunnerConfig silent_shards;
  silent_shards.num_shards = kShards;
  silent_shards.store_dir = silent_dir;
  silent_shards.worker_status = false;
  search::ShardRunner silent_runner(fx.domain, config, 1234, silent_shards,
                                    &fx.pool);
  clean_store_dir(silent_runner);
  const auto silent = run_sharded(config, silent_runner, {});

  // Bit-identical results: counters, rankings, and the merged journal's
  // record set.
  EXPECT_EQ(silent.n_total, observed.n_total);
  EXPECT_EQ(silent.n_fully_trained, observed.n_fully_trained);
  EXPECT_DOUBLE_EQ(silent.original_score, observed.original_score);
  ASSERT_EQ(silent.has_best(), observed.has_best());
  if (silent.has_best()) {
    EXPECT_DOUBLE_EQ(silent.best_score, observed.best_score);
    EXPECT_EQ(silent.outcomes[silent.best_index].id,
              observed.outcomes[observed.best_index].id);
  }
  EXPECT_EQ(trained_rows(silent), trained_rows(observed));
  const auto observed_journal =
      sorted_lines(observed_runner.merged_store_path());
  EXPECT_EQ(sorted_lines(silent_runner.merged_store_path()),
            observed_journal);
  EXPECT_FALSE(observed_journal.empty());

  // ...while the sinks actually captured the run. Metrics snapshot:
  EXPECT_EQ(registry.counter("search.candidates.entered").value(),
            static_cast<std::uint64_t>(config.num_candidates) * (kShards + 1));
  EXPECT_GT(registry.counter("store.lookups").value(), 0u);
  EXPECT_GT(registry.histogram("rl.probe_block.seconds").count(), 0u);
  EXPECT_NO_THROW(util::JsonValue::parse(registry.snapshot().dump()));
  // Trace: non-empty, every line valid JSON.
  const auto trace_lines = sorted_lines(trace_path);
  EXPECT_GT(trace_lines.size(), 0u);
  for (const auto& line : trace_lines) {
    ASSERT_NO_THROW(util::JsonValue::parse(line)) << line;
  }
  // Worker heartbeats: every shard reported and finished; the driver's
  // aggregate folds all of them.
  const auto statuses = observed_runner.worker_statuses();
  ASSERT_EQ(statuses.size(), kShards);
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    ASSERT_TRUE(statuses[shard].has_value()) << "shard " << shard;
    EXPECT_TRUE(statuses[shard]->done());
    EXPECT_EQ(statuses[shard]->counter("entered"), config.num_candidates);
  }
  const util::JsonValue aggregate = observed_runner.write_merged_status();
  EXPECT_EQ(aggregate.get("n_workers").as_number(),
            static_cast<double>(kShards));
  EXPECT_EQ(aggregate.get("n_reporting").as_number(),
            static_cast<double>(kShards));
  EXPECT_EQ(aggregate.get("n_done").as_number(), static_cast<double>(kShards));
  const auto on_disk =
      util::read_file_if_exists(observed_runner.aggregate_status_path());
  ASSERT_TRUE(on_disk.has_value());
  EXPECT_NO_THROW(util::JsonValue::parse(*on_disk));
  // The driver's own status file (merge pass) is there too.
  const auto driver = read_status(observed_runner.merged_status_path());
  ASSERT_TRUE(driver.has_value());
  EXPECT_EQ(driver->label, "driver");
  EXPECT_TRUE(driver->done());
}

}  // namespace
}  // namespace nada::obs

// Property-style tests: invariants that must hold across randomized inputs
// and whole families of configurations, exercised with parameterized
// sweeps. These catch interaction bugs the example-based unit tests miss.
#include <gtest/gtest.h>

#include <cmath>

#include "dsl/state_program.h"
#include "env/abr_domain.h"
#include "env/abr_env.h"
#include "filter/checks.h"
#include "gen/state_gen.h"
#include "nn/arch.h"
#include "trace/generator.h"
#include "video/video.h"

namespace nada {
namespace {

// ---- DSL / generator properties ---------------------------------------------

// Property: for any generated candidate, the compilation check never
// throws — all lexer/parser/runtime failures are captured as a result.
TEST(Property, CompilationCheckIsTotal) {
  gen::StateGenerator generator(gen::gpt35_profile(), gen::PromptStrategy{},
                                12345);
  for (int i = 0; i < 2000; ++i) {
    const auto cand = generator.generate();
    EXPECT_NO_THROW({ (void)filter::compilation_check(cand.source, env::abr_catalog()); });
  }
}

// Property: a compiled program is a pure function of its observation —
// same observation, same state matrix.
TEST(Property, CompiledProgramsAreDeterministic) {
  gen::StateGenerator generator(gen::gpt4_profile(), gen::PromptStrategy{},
                                777);
  util::Rng rng(9);
  std::size_t checked = 0;
  for (int i = 0; i < 400 && checked < 60; ++i) {
    const auto cand = generator.generate();
    std::optional<dsl::StateProgram> program;
    if (!filter::compilation_check(cand.source, env::abr_catalog(), &program).passed) continue;
    const dsl::Bindings obs =
        env::bindings_from_observation(env::fuzz_observation(rng));
    try {
      const auto a = program->run(obs);
      const auto b = program->run(obs);
      ASSERT_EQ(a.rows.size(), b.rows.size());
      for (std::size_t r = 0; r < a.rows.size(); ++r) {
        EXPECT_EQ(a.rows[r].values, b.rows[r].values);
      }
      ++checked;
    } catch (const dsl::RuntimeError&) {
      // Fuzz inputs may legitimately trigger runtime errors; the property
      // only concerns successful evaluations.
    }
  }
  EXPECT_GE(checked, 40u);
}

// Property: the normalization check is monotone in the threshold — a
// program passing at T also passes at any T' > T.
TEST(Property, NormalizationCheckMonotoneInThreshold) {
  gen::StateGenerator generator(gen::gpt4_profile(), gen::PromptStrategy{},
                                31);
  const double thresholds[] = {10.0, 50.0, 100.0, 1000.0};
  std::size_t checked = 0;
  for (int i = 0; i < 300 && checked < 50; ++i) {
    const auto cand = generator.generate();
    std::optional<dsl::StateProgram> program;
    if (!filter::compilation_check(cand.source, env::abr_catalog(), &program).passed) continue;
    ++checked;
    bool passed_before = false;
    for (const double t : thresholds) {
      const bool passes = filter::normalization_check(*program, env::abr_catalog(), t).passed;
      if (passed_before) {
        EXPECT_TRUE(passes) << cand.source << " failed at T=" << t
                            << " after passing a smaller threshold";
      }
      passed_before = passed_before || passes;
    }
  }
  EXPECT_GE(checked, 30u);
}

// Property: every emitted row of a normalized program stays bounded by the
// threshold across many fuzz draws (the check generalizes past its own 16
// draws).
TEST(Property, NormalizedProgramsStayBounded) {
  gen::StateGenerator generator(gen::gpt4_profile(), gen::PromptStrategy{},
                                55);
  util::Rng rng(100);
  std::size_t checked = 0;
  for (int i = 0; i < 400 && checked < 30; ++i) {
    const auto cand = generator.generate();
    std::optional<dsl::StateProgram> program;
    if (!filter::compilation_check(cand.source, env::abr_catalog(), &program).passed) continue;
    if (!filter::normalization_check(*program, env::abr_catalog()).passed) continue;
    ++checked;
    for (int run = 0; run < 50; ++run) {
      try {
        const auto matrix = program->run(env::bindings_from_observation(env::fuzz_observation(rng)));
        // Allow a small multiple: the 16-draw check is statistical.
        EXPECT_LT(matrix.max_abs(), 100.0 * 4)
            << cand.source;
      } catch (const dsl::RuntimeError&) {
        // Rare fragile paths are acceptable here.
        break;
      }
    }
  }
  EXPECT_GE(checked, 20u);
}

// ---- environment properties -----------------------------------------------------

class EnvironmentProperty
    : public ::testing::TestWithParam<trace::Environment> {};

// Property: chunk downloads conserve sanity — time advances, buffer stays
// within [0, cap + chunk], rebuffer only when the buffer ran dry.
TEST_P(EnvironmentProperty, SessionInvariantsHold) {
  util::Rng rng(17);
  const auto tr = trace::generate_trace(GetParam(), 300.0, rng);
  const bool high_bw = GetParam() == trace::Environment::k4G ||
                       GetParam() == trace::Environment::k5G;
  const auto video = video::make_test_video(
      high_bw ? video::youtube_ladder() : video::pensieve_ladder(), 9);
  env::StreamingSession session(tr, video);
  double last_clock = session.clock_s();
  while (!session.finished()) {
    const auto lvl = static_cast<std::size_t>(rng.uniform_int(0, 5));
    const auto result = session.download_chunk(lvl);
    EXPECT_GT(session.clock_s(), last_clock);
    last_clock = session.clock_s();
    EXPECT_GE(result.buffer_s, 0.0);
    EXPECT_LE(result.buffer_s, 60.0 + video.chunk_len_s() + 1e-9);
    EXPECT_GE(result.download_time_s, 0.0);
    EXPECT_GE(result.rebuffer_s, 0.0);
    EXPECT_LE(result.rebuffer_s, result.download_time_s + 1e-9);
    EXPECT_GT(result.throughput_mbps, 0.0);
  }
}

// Property: the observation's histories always have the documented shapes
// and non-negative values, at every step of every environment.
TEST_P(EnvironmentProperty, ObservationShapesStable) {
  util::Rng rng(23);
  const auto tr = trace::generate_trace(GetParam(), 200.0, rng);
  const auto video = video::make_test_video(video::pensieve_ladder(), 10);
  env::AbrEnv env(tr, video, env::Fidelity::kSimulation, rng);
  env::Observation obs = env.reset();
  while (!env.done()) {
    ASSERT_EQ(obs.throughput_mbps.size(), env::kHistoryLen);
    ASSERT_EQ(obs.download_time_s.size(), env::kHistoryLen);
    ASSERT_EQ(obs.buffer_s_history.size(), env::kHistoryLen);
    ASSERT_EQ(obs.next_chunk_bytes.size(), 6u);
    for (double v : obs.throughput_mbps) EXPECT_GE(v, 0.0);
    for (double v : obs.download_time_s) EXPECT_GE(v, 0.0);
    EXPECT_GE(obs.buffer_s, 0.0);
    EXPECT_GE(obs.chunks_remaining, 0.0);
    const auto step =
        env.step(static_cast<std::size_t>(rng.uniform_int(0, 5)));
    EXPECT_TRUE(std::isfinite(step.reward));
    obs = step.observation;
  }
}

// Property: emulation fidelity never downloads faster than the simulator's
// idealized transfer for the same chunk sequence (overheads only add).
TEST_P(EnvironmentProperty, EmulationNeverFasterOnAverage) {
  util::Rng rng(29);
  const auto tr = trace::generate_trace(GetParam(), 250.0, rng);
  const auto video = video::make_test_video(video::pensieve_ladder(), 11);
  util::Rng rng_sim(5);
  util::Rng rng_emu(5);
  env::StreamingSession sim(tr, video);
  env::EmuSession emu(tr, video, rng_emu);
  double sim_total = 0.0;
  double emu_total = 0.0;
  for (int i = 0; i < 20; ++i) {
    sim_total += sim.download_chunk(2).download_time_s;
    emu_total += emu.download_chunk(2).download_time_s;
  }
  EXPECT_GT(emu_total, sim_total * 0.95);
}

INSTANTIATE_TEST_SUITE_P(AllEnvironments, EnvironmentProperty,
                         ::testing::ValuesIn(trace::all_environments()),
                         [](const auto& info) {
                           return std::string(
                               trace::environment_name(info.param));
                         });

// ---- trace properties -------------------------------------------------------------

class TraceRoundtrip : public ::testing::TestWithParam<trace::Environment> {};

TEST_P(TraceRoundtrip, CookedFormatPreservesTrace) {
  util::Rng rng(41);
  const auto tr = trace::generate_trace(GetParam(), 120.0, rng);
  const auto back = trace::from_cooked_format("rt", to_cooked_format(tr));
  ASSERT_EQ(back.size(), tr.size());
  EXPECT_NEAR(back.mean_kbps(), tr.mean_kbps(), tr.mean_kbps() * 1e-4);
}

TEST_P(TraceRoundtrip, MahimahiFormatPreservesMeanRate) {
  util::Rng rng(43);
  const auto tr = trace::generate_trace(GetParam(), 120.0, rng);
  const auto back =
      trace::from_mahimahi_format("rt", to_mahimahi_format(tr));
  // Packetization quantizes at 1500 B granularity; 5% tolerance.
  EXPECT_NEAR(back.mean_kbps(), tr.mean_kbps(), tr.mean_kbps() * 0.05);
}

INSTANTIATE_TEST_SUITE_P(AllEnvironments, TraceRoundtrip,
                         ::testing::ValuesIn(trace::all_environments()),
                         [](const auto& info) {
                           return std::string(
                               trace::environment_name(info.param));
                         });

// ---- network properties ------------------------------------------------------------

class WidthSweep : public ::testing::TestWithParam<std::size_t> {};

// Property: forward passes are deterministic and produce valid
// distributions at every width.
TEST_P(WidthSweep, ForwardDeterministicAndNormalized) {
  nn::ArchSpec spec = nn::ArchSpec::pensieve();
  spec.conv_filters = spec.scalar_hidden = spec.merge_hidden = GetParam();
  util::Rng rng(51);
  nn::StateSignature sig;
  sig.row_lengths = {1, 1, 8, 8, 6, 1};
  nn::ActorCriticNet net(spec, sig, 6, rng);
  const std::vector<nn::Vec> rows = {
      {0.3}, {0.9}, {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8},
      {0.2, 0.2, 0.3, 0.1, 0.4, 0.2, 0.3, 0.2},
      {0.1, 0.2, 0.4, 0.7, 1.1, 1.7}, {0.5}};
  const auto a = net.forward(rows);
  const auto b = net.forward(rows);
  EXPECT_EQ(a.probs, b.probs);
  EXPECT_EQ(a.value, b.value);
  double total = 0.0;
  for (double p : a.probs) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

// Property: recurrent temporal units are order-sensitive — reversing the
// input sequence changes the output (they actually use temporal structure).
TEST_P(WidthSweep, RecurrentUnitsAreOrderSensitive) {
  util::Rng rng(53);
  nn::SimpleRnn rnn(8, GetParam(), rng);
  nn::Lstm lstm(8, GetParam(), rng);
  const nn::Vec forward_seq = {0.1, 0.4, 0.2, 0.8, 0.3, 0.9, 0.5, 0.7};
  nn::Vec reversed = forward_seq;
  std::reverse(reversed.begin(), reversed.end());
  EXPECT_NE(rnn.forward(forward_seq), rnn.forward(reversed));
  EXPECT_NE(lstm.forward(forward_seq), lstm.forward(reversed));
}

INSTANTIATE_TEST_SUITE_P(Widths, WidthSweep,
                         ::testing::Values(8, 16, 32, 64),
                         [](const auto& info) {
                           return "w" + std::to_string(info.param);
                         });

// ---- generator batch properties ------------------------------------------------------

TEST(Property, CandidateIdsUniqueAcrossLargeBatch) {
  gen::StateGenerator generator(gen::gpt4_profile(), gen::PromptStrategy{},
                                61);
  std::set<std::string> ids;
  const auto batch = generator.generate_batch(1000);
  for (const auto& cand : batch) ids.insert(cand.id);
  EXPECT_EQ(ids.size(), batch.size());
}

TEST(Property, FlawRatesStableAcrossSeeds) {
  // The calibrated rates are seed-independent in expectation: two large
  // batches from different seeds land within a few points of each other.
  auto compile_rate = [](std::uint64_t seed) {
    gen::StateGenerator generator(gen::gpt35_profile(),
                                  gen::PromptStrategy{}, seed);
    std::size_t ok = 0;
    const auto batch = generator.generate_batch(1500);
    for (const auto& cand : batch) {
      if (filter::compilation_check(cand.source, env::abr_catalog()).passed) ++ok;
    }
    return static_cast<double>(ok) / 1500.0;
  };
  EXPECT_NEAR(compile_rate(1), compile_rate(999), 0.06);
}

}  // namespace
}  // namespace nada

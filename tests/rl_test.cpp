// Tests for the RL substrate: agent construction, A2C training dynamics,
// deterministic evaluation, and the multi-seed session protocol.
#include <gtest/gtest.h>

#include "dsl/state_program.h"
#include "rl/agent.h"
#include "rl/session.h"
#include "rl/trainer.h"
#include "trace/generator.h"
#include "util/stats.h"
#include "util/thread_pool.h"
#include "video/video.h"

namespace nada::rl {
namespace {

nn::ArchSpec tiny_arch() {
  nn::ArchSpec spec = nn::ArchSpec::pensieve();
  spec.conv_filters = 8;
  spec.scalar_hidden = 8;
  spec.merge_hidden = 16;
  return spec;
}

trace::Dataset tiny_dataset(trace::Environment env = trace::Environment::kFcc,
                            std::uint64_t seed = 11) {
  return trace::build_dataset(env, 0.03, seed);
}

dsl::StateProgram pensieve_program() {
  return dsl::StateProgram::compile(dsl::pensieve_state_source());
}

// ---- AbrAgent ---------------------------------------------------------------

TEST(AbrAgent, SignatureDerivedFromProgram) {
  const auto program = pensieve_program();
  const nn::StateSignature sig = derive_signature(program);
  EXPECT_EQ(sig.row_lengths, (std::vector<std::size_t>{1, 1, 8, 8, 6, 1}));
}

TEST(AbrAgent, DecideReturnsValidDistribution) {
  const auto program = pensieve_program();
  util::Rng rng(1);
  AbrAgent agent(program, tiny_arch(), 6, rng);
  const auto decision =
      agent.decide(env::canned_observation(), /*sample=*/false, rng);
  ASSERT_EQ(decision.probs.size(), 6u);
  double total = 0.0;
  for (double p : decision.probs) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_LT(decision.action, 6u);
}

TEST(AbrAgent, GreedyPicksArgmax) {
  const auto program = pensieve_program();
  util::Rng rng(2);
  AbrAgent agent(program, tiny_arch(), 6, rng);
  const auto decision =
      agent.decide(env::canned_observation(), /*sample=*/false, rng);
  for (double p : decision.probs) {
    EXPECT_LE(p, decision.probs[decision.action] + 1e-12);
  }
}

TEST(AbrAgent, SampledActionsVary) {
  const auto program = pensieve_program();
  util::Rng rng(3);
  AbrAgent agent(program, tiny_arch(), 6, rng);
  std::set<std::size_t> actions;
  for (int i = 0; i < 100; ++i) {
    actions.insert(
        agent.decide(env::canned_observation(), /*sample=*/true, rng).action);
  }
  // A freshly initialized policy is near-uniform: sampling covers several
  // actions.
  EXPECT_GE(actions.size(), 3u);
}

TEST(AbrAgent, CustomStateShapeBuildsMatchingNet) {
  const auto program = dsl::StateProgram::compile(
      "emit \"buf\" = buffer_size_s / 10.0;\n"
      "emit \"tput\" = throughput_mbps / 8.0;\n");
  util::Rng rng(4);
  AbrAgent agent(program, tiny_arch(), 6, rng);
  EXPECT_EQ(agent.signature().row_lengths,
            (std::vector<std::size_t>{1, 8}));
  EXPECT_NO_THROW(
      agent.decide(env::canned_observation(), /*sample=*/false, rng));
}

// ---- Trainer ----------------------------------------------------------------

TEST(Trainer, RewardImprovesOnEasyEnvironment) {
  const auto dataset = tiny_dataset(trace::Environment::kFcc, 21);
  const auto video = video::make_test_video(video::pensieve_ladder(), 5);
  TrainConfig config;
  config.epochs = 240;
  config.test_interval = 60;
  config.learning_rate = 2e-3;
  Trainer trainer(dataset, video, config, 77);
  const auto result = trainer.train(pensieve_program(), tiny_arch());
  ASSERT_FALSE(result.failed) << result.error;
  ASSERT_EQ(result.train_rewards.size(), config.epochs);
  const double early = util::mean(
      std::span(result.train_rewards).subspan(0, 48));
  const double late = util::mean(
      std::span(result.train_rewards).subspan(config.epochs - 48));
  EXPECT_GT(late, early);
}

TEST(Trainer, CheckpointCadenceMatchesInterval) {
  const auto dataset = tiny_dataset();
  const auto video = video::make_test_video(video::pensieve_ladder(), 6);
  TrainConfig config;
  config.epochs = 50;
  config.test_interval = 10;
  Trainer trainer(dataset, video, config, 1);
  const auto result = trainer.train(pensieve_program(), tiny_arch());
  ASSERT_FALSE(result.failed);
  ASSERT_EQ(result.test_scores.size(), 5u);
  EXPECT_EQ(result.test_epochs.front(), 10.0);
  EXPECT_EQ(result.test_epochs.back(), 50.0);
}

TEST(Trainer, SkippingEvaluationProducesNoCheckpoints) {
  const auto dataset = tiny_dataset();
  const auto video = video::make_test_video(video::pensieve_ladder(), 7);
  TrainConfig config;
  config.epochs = 30;
  config.evaluate_checkpoints = false;
  Trainer trainer(dataset, video, config, 2);
  const auto result = trainer.train(pensieve_program(), tiny_arch());
  ASSERT_FALSE(result.failed);
  EXPECT_TRUE(result.test_scores.empty());
  EXPECT_EQ(result.train_rewards.size(), 30u);
  // final_score falls back to the training-reward tail.
  EXPECT_NEAR(result.final_score,
              util::tail_mean(result.train_rewards, 10), 1e-12);
}

TEST(Trainer, FragileProgramCapturedAsFailure) {
  // Passes the canned trial run but throws on the all-zero first
  // observation of a real episode (log of zero minimum throughput).
  const auto program = dsl::StateProgram::compile(
      "emit \"x\" = log(vmin(throughput_mbps) + 0.0001) / 10.0;\n"
      "emit \"buf\" = buffer_size_s / 10.0;\n");
  const auto dataset = tiny_dataset();
  const auto video = video::make_test_video(video::pensieve_ladder(), 8);
  TrainConfig config;
  config.epochs = 10;
  Trainer trainer(dataset, video, config, 3);
  const auto result = trainer.train(program, tiny_arch());
  // log(0.0001) = -9.2: fine. This one survives; now the truly fragile one:
  const auto fragile = dsl::StateProgram::compile(
      "emit \"x\" = log(vmin(throughput_mbps));\n");
  const auto result2 = trainer.train(fragile, tiny_arch());
  EXPECT_TRUE(result2.failed);
  EXPECT_FALSE(result2.error.empty());
  EXPECT_EQ(result2.final_score, -1e9);
  (void)result;
}

TEST(Trainer, InvalidArchCapturedAsFailure) {
  const auto dataset = tiny_dataset();
  const auto video = video::make_test_video(video::pensieve_ladder(), 9);
  TrainConfig config;
  config.epochs = 5;
  Trainer trainer(dataset, video, config, 4);
  nn::ArchSpec bad = tiny_arch();
  bad.conv_kernel = 7;  // > next-sizes row length 6
  const auto result = trainer.train(pensieve_program(), bad);
  EXPECT_TRUE(result.failed);
}

TEST(Trainer, MaxEvalTracesCapsEvaluation) {
  const auto dataset = tiny_dataset();
  const auto video = video::make_test_video(video::pensieve_ladder(), 10);
  TrainConfig config;
  config.epochs = 10;
  config.test_interval = 10;
  config.max_eval_traces = 1;
  Trainer trainer(dataset, video, config, 5);
  const auto result = trainer.train(pensieve_program(), tiny_arch());
  ASSERT_FALSE(result.failed);
  EXPECT_EQ(result.test_scores.size(), 1u);
}

TEST(Trainer, RejectsDegenerateConfig) {
  const auto dataset = tiny_dataset();
  const auto video = video::make_test_video(video::pensieve_ladder(), 11);
  TrainConfig zero_epochs;
  zero_epochs.epochs = 0;
  EXPECT_THROW(Trainer(dataset, video, zero_epochs, 1),
               std::invalid_argument);
  TrainConfig zero_interval;
  zero_interval.test_interval = 0;
  EXPECT_THROW(Trainer(dataset, video, zero_interval, 1),
               std::invalid_argument);
}

// ---- evaluation ---------------------------------------------------------------

TEST(EvaluateAgent, DeterministicForSeed) {
  const auto dataset = tiny_dataset();
  const auto video = video::make_test_video(video::pensieve_ladder(), 12);
  const auto program = pensieve_program();
  util::Rng rng(6);
  AbrAgent agent(program, tiny_arch(), 6, rng);
  const double a =
      evaluate_agent(agent, dataset.test, video,
                     env::Fidelity::kSimulation, 42);
  const double b =
      evaluate_agent(agent, dataset.test, video,
                     env::Fidelity::kSimulation, 42);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(EvaluateAgent, EmulationDiffersFromSimulation) {
  const auto dataset = tiny_dataset();
  const auto video = video::make_test_video(video::pensieve_ladder(), 13);
  const auto program = pensieve_program();
  util::Rng rng(7);
  AbrAgent agent(program, tiny_arch(), 6, rng);
  const double sim = evaluate_agent(agent, dataset.test, video,
                                    env::Fidelity::kSimulation, 42);
  const double emu = evaluate_agent(agent, dataset.test, video,
                                    env::Fidelity::kEmulation, 42);
  EXPECT_NE(sim, emu);
}

TEST(EvalTraceIndices, StridesAcrossWholeSplit) {
  // The capped subset must sample the whole split, not its prefix.
  const auto picked = eval_trace_indices(10, 4);
  EXPECT_EQ(picked, (std::vector<std::size_t>{0, 2, 5, 7}));
  // Strictly increasing, spanning past the midpoint.
  EXPECT_GT(picked.back(), 10u / 2);
}

TEST(EvalTraceIndices, UncappedIsIdentity) {
  const auto all = eval_trace_indices(5, 0);
  EXPECT_EQ(all, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(eval_trace_indices(5, 9), all);
  EXPECT_EQ(eval_trace_indices(5, 5), all);
}

TEST(EvalTraceIndices, NoDuplicates) {
  for (std::size_t n : {7u, 13u, 40u}) {
    for (std::size_t cap = 1; cap < n; ++cap) {
      const auto picked = eval_trace_indices(n, cap);
      ASSERT_EQ(picked.size(), cap);
      for (std::size_t j = 1; j < picked.size(); ++j) {
        EXPECT_LT(picked[j - 1], picked[j]);
      }
      EXPECT_LT(picked.back(), n);
    }
  }
}

TEST(EvaluateAgent, SubsetOverloadMatchesManualSubset) {
  const auto dataset = tiny_dataset();
  const auto video = video::make_test_video(video::pensieve_ladder(), 18);
  const auto program = pensieve_program();
  util::Rng rng(8);
  AbrAgent agent(program, tiny_arch(), 6, rng);
  const std::vector<std::size_t> indices =
      eval_trace_indices(dataset.test.size(), 2);
  std::vector<trace::Trace> subset;
  for (std::size_t i : indices) subset.push_back(dataset.test[i]);
  const double via_indices =
      evaluate_agent(agent, dataset.test, indices, video,
                     env::Fidelity::kSimulation, 42);
  const double via_copy = evaluate_agent(agent, subset, video,
                                         env::Fidelity::kSimulation, 42);
  EXPECT_DOUBLE_EQ(via_indices, via_copy);
}

// ---- sessions -------------------------------------------------------------------

TEST(RunSessions, MedianAcrossSeeds) {
  const auto dataset = tiny_dataset();
  const auto video = video::make_test_video(video::pensieve_ladder(), 14);
  const auto program = pensieve_program();
  SessionConfig config;
  config.seeds = 3;
  config.train.epochs = 30;
  config.train.test_interval = 10;
  const auto result = run_sessions(dataset, video, program, tiny_arch(),
                                   config, 123);
  ASSERT_EQ(result.sessions.size(), 3u);
  EXPECT_FALSE(result.failed);
  std::vector<double> finals;
  for (const auto& s : result.sessions) finals.push_back(s.final_score);
  EXPECT_DOUBLE_EQ(result.test_score, util::median(finals));
  // Median curve covers the common checkpoints.
  EXPECT_EQ(result.median_curve.size(), 3u);
  EXPECT_EQ(result.curve_epochs.size(), 3u);
}

TEST(RunSessions, ParallelMatchesSerial) {
  const auto dataset = tiny_dataset();
  const auto video = video::make_test_video(video::pensieve_ladder(), 15);
  const auto program = pensieve_program();
  SessionConfig config;
  config.seeds = 2;
  config.train.epochs = 15;
  config.train.test_interval = 15;
  const auto serial = run_sessions(dataset, video, program, tiny_arch(),
                                   config, 55, nullptr);
  util::ThreadPool pool(2);
  const auto parallel = run_sessions(dataset, video, program, tiny_arch(),
                                     config, 55, &pool);
  EXPECT_DOUBLE_EQ(serial.test_score, parallel.test_score);
}

TEST(RunSessions, AllSessionsFailingIsReported) {
  const auto dataset = tiny_dataset();
  const auto video = video::make_test_video(video::pensieve_ladder(), 16);
  const auto fragile = dsl::StateProgram::compile(
      "emit \"x\" = log(vmin(throughput_mbps));\n");
  SessionConfig config;
  config.seeds = 2;
  config.train.epochs = 5;
  const auto result = run_sessions(dataset, video, fragile, tiny_arch(),
                                   config, 66);
  EXPECT_TRUE(result.failed);
  EXPECT_EQ(result.test_score, -1e9);
}

TEST(RunSessions, ZeroSeedsRejected) {
  const auto dataset = tiny_dataset();
  const auto video = video::make_test_video(video::pensieve_ladder(), 17);
  SessionConfig config;
  config.seeds = 0;
  EXPECT_THROW(run_sessions(dataset, video, pensieve_program(), tiny_arch(),
                            config, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace nada::rl

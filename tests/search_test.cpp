// Tests for the composable search API (src/search/):
//
//   * bit-identity: core::Pipeline's entry points are a thin wrapper over
//     search::SearchJob — same seeds produce byte-identical store journals
//     and identical rankings through either surface, for state and arch
//     searches (the backward-compatible-upgrade contract),
//   * stage stepping: next_stage() walks the documented stage order and a
//     stepped job equals a run_to_completion() job,
//   * observer coverage: every stage fires start/finish with a timing, and
//     every candidate milestone (entered / cached / failed / probed /
//     early-stopped / trained) is represented — no funnel transition goes
//     silent,
//   * sharding: a 4-shard worker pass + merge_and_rank equals the
//     single-process run — identical rankings and identical journal
//     records (the multi-process driver's correctness pin),
//   * resume folding: SearchJob::resume() behaves like the historical
//     resume_* twins,
//   * unified candidates: one job can carry state-program and architecture
//     candidates in the same stream.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "core/pipeline.h"
#include "search/candidate.h"
#include "search/observer.h"
#include "search/search_job.h"
#include "search/shard_runner.h"
#include "store/shard.h"
#include "util/fs.h"

namespace nada::search {
namespace {

std::string fresh_path(const std::string& tag) {
  const std::string path =
      ::testing::TempDir() + "nada_search_" + tag + ".jsonl";
  std::remove(path.c_str());
  return path;
}

std::string fresh_dir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "nada_search_" + tag;
  return dir;
}

SearchConfig tiny_config() {
  SearchConfig config;
  config.num_candidates = 30;
  config.early_epochs = 8;
  config.full_train_top = 3;
  config.seeds = 2;
  config.train.epochs = 24;
  config.train.test_interval = 8;
  config.train.max_eval_traces = 4;
  nn::ArchSpec arch = nn::ArchSpec::pensieve();
  arch.conv_filters = 8;
  arch.scalar_hidden = 8;
  arch.merge_hidden = 16;
  config.baseline_arch = arch;
  return config;
}

struct Fixture {
  trace::Dataset dataset =
      trace::build_dataset(trace::Environment::kStarlink, 0.2, 99);
  video::Video video = video::make_test_video(video::pensieve_ladder(), 7);
  env::AbrDomain domain{dataset, video};
  util::ThreadPool pool{8};
};

void expect_same_result(const SearchResult& a, const SearchResult& b) {
  EXPECT_EQ(a.n_total, b.n_total);
  EXPECT_EQ(a.n_compiled, b.n_compiled);
  EXPECT_EQ(a.n_normalized, b.n_normalized);
  EXPECT_EQ(a.n_early_stopped, b.n_early_stopped);
  EXPECT_EQ(a.n_fully_trained, b.n_fully_trained);
  EXPECT_EQ(a.best_index, b.best_index);
  EXPECT_DOUBLE_EQ(a.best_score, b.best_score);
  EXPECT_DOUBLE_EQ(a.original_score, b.original_score);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].id, b.outcomes[i].id);
    EXPECT_EQ(a.outcomes[i].compiled, b.outcomes[i].compiled);
    EXPECT_EQ(a.outcomes[i].normalized, b.outcomes[i].normalized);
    EXPECT_EQ(a.outcomes[i].early_probed, b.outcomes[i].early_probed);
    EXPECT_EQ(a.outcomes[i].early_stopped, b.outcomes[i].early_stopped);
    EXPECT_EQ(a.outcomes[i].fully_trained, b.outcomes[i].fully_trained);
    EXPECT_DOUBLE_EQ(a.outcomes[i].test_score, b.outcomes[i].test_score);
    EXPECT_EQ(a.outcomes[i].early_rewards, b.outcomes[i].early_rewards);
  }
}

// ---- wrapper bit-identity ---------------------------------------------------

TEST(SearchJobEquivalence, StateSearchMatchesPipelineWrapperBitForBit) {
  Fixture fx;
  const SearchConfig config = tiny_config();

  // Through the compatibility wrapper.
  const std::string wrapper_path = fresh_path("wrap_state");
  core::Pipeline pipeline(fx.dataset, fx.video, config, 1234, &fx.pool);
  store::CandidateStore wrapper_store(wrapper_path, pipeline.store_scope());
  pipeline.attach_store(&wrapper_store);
  gen::StateGenerator gen1(gen::gpt4_profile(), gen::PromptStrategy{}, 77);
  const auto via_wrapper = pipeline.search_states(gen1, config.baseline_arch);

  // Directly through a SearchJob.
  const std::string direct_path = fresh_path("direct_state");
  store::CandidateStore direct_store(
      direct_path, store_scope(fx.domain, config, 1234));
  gen::StateGenerator gen2(gen::gpt4_profile(), gen::PromptStrategy{}, 77);
  StateCandidateSource source(gen2);
  JobOptions options;
  options.store = &direct_store;
  options.pool = &fx.pool;
  SearchJob job(fx.domain, config, 1234, source,
                FixedDesign{nullptr, &config.baseline_arch}, options);
  const auto direct = job.run_to_completion();

  expect_same_result(via_wrapper, direct);
  // The journals must match byte for byte: the wrapper adds nothing and
  // loses nothing on the way to the store.
  EXPECT_EQ(util::read_file(wrapper_path), util::read_file(direct_path));
}

TEST(SearchJobEquivalence, ArchSearchMatchesPipelineWrapperBitForBit) {
  Fixture fx;
  SearchConfig config = tiny_config();
  config.num_candidates = 20;
  const auto state = dsl::StateProgram::compile(dsl::pensieve_state_source());

  const std::string wrapper_path = fresh_path("wrap_arch");
  core::Pipeline pipeline(fx.dataset, fx.video, config, 555, &fx.pool);
  store::CandidateStore wrapper_store(wrapper_path, pipeline.store_scope());
  pipeline.attach_store(&wrapper_store);
  gen::ArchGenerator gen1(gen::gpt35_profile(), gen::PromptStrategy{}, 99,
                          0.25);
  const auto via_wrapper = pipeline.search_archs(gen1, state);

  const std::string direct_path = fresh_path("direct_arch");
  store::CandidateStore direct_store(direct_path,
                                     store_scope(fx.domain, config, 555));
  gen::ArchGenerator gen2(gen::gpt35_profile(), gen::PromptStrategy{}, 99,
                          0.25);
  ArchCandidateSource source(gen2);
  JobOptions options;
  options.store = &direct_store;
  options.pool = &fx.pool;
  SearchJob job(fx.domain, config, 555, source,
                FixedDesign{&state, nullptr}, options);
  const auto direct = job.run_to_completion();

  expect_same_result(via_wrapper, direct);
  EXPECT_EQ(util::read_file(wrapper_path), util::read_file(direct_path));
}

// ---- stage stepping ---------------------------------------------------------

TEST(SearchJobStepping, WalksTheDocumentedStageOrder) {
  Fixture fx;
  const SearchConfig config = tiny_config();
  gen::StateGenerator generator(gen::gpt4_profile(), gen::PromptStrategy{},
                                77);
  StateCandidateSource source(generator);
  JobOptions options;
  options.pool = &fx.pool;
  SearchJob job(fx.domain, config, 1234, source,
                FixedDesign{nullptr, &config.baseline_arch}, options);

  const StageKind expected[] = {
      StageKind::kGenerate, StageKind::kPrecheck, StageKind::kProbe,
      StageKind::kBaseline, StageKind::kSelect,   StageKind::kFullTrain,
      StageKind::kRank};
  for (StageKind stage : expected) {
    ASSERT_FALSE(job.done());
    EXPECT_EQ(job.next_stage_kind(), stage);
    job.next_stage();
  }
  EXPECT_TRUE(job.done());
  EXPECT_EQ(job.next_stage_kind(), StageKind::kDone);
  EXPECT_FALSE(job.next_stage());  // stepping a finished job is a no-op

  // Partial results accumulate: after the probe stage the counters exist
  // even though selection never ran.
  EXPECT_EQ(job.result().n_total, config.num_candidates);
  EXPECT_GT(job.result().n_probes_run, 0u);
  EXPECT_GT(job.result().n_fully_trained, 0u);
}

TEST(SearchJobStepping, SteppedJobEqualsRunToCompletion) {
  Fixture fx;
  const SearchConfig config = tiny_config();

  gen::StateGenerator gen1(gen::gpt4_profile(), gen::PromptStrategy{}, 77);
  StateCandidateSource source1(gen1);
  JobOptions options;
  options.pool = &fx.pool;
  SearchJob stepped(fx.domain, config, 1234, source1,
                    FixedDesign{nullptr, &config.baseline_arch}, options);
  while (stepped.next_stage()) {
  }

  gen::StateGenerator gen2(gen::gpt4_profile(), gen::PromptStrategy{}, 77);
  StateCandidateSource source2(gen2);
  SearchJob whole(fx.domain, config, 1234, source2,
                  FixedDesign{nullptr, &config.baseline_arch}, options);
  const auto result = whole.run_to_completion();
  expect_same_result(stepped.result(), result);
}

// ---- observer coverage ------------------------------------------------------

TEST(SearchObserver, EveryStageAndMilestoneFires) {
  Fixture fx;
  const SearchConfig config = tiny_config();
  const std::string path = fresh_path("observer");
  store::CandidateStore store(path, store_scope(fx.domain, config, 1234));
  gen::StateGenerator generator(gen::gpt4_profile(), gen::PromptStrategy{},
                                77);
  StateCandidateSource source(generator);
  JobOptions options;
  options.store = &store;
  options.pool = &fx.pool;
  SearchJob job(fx.domain, config, 1234, source,
                FixedDesign{nullptr, &config.baseline_arch}, options);
  RecordingObserver recording;
  std::ostringstream stream_sink;
  StreamObserver stream(stream_sink);
  job.add_observer(&recording);
  job.add_observer(&stream);
  const auto result = job.run_to_completion();

  // Stage coverage: all seven stages started and finished, in order, with
  // non-negative timings.
  ASSERT_EQ(recording.started.size(), 7u);
  ASSERT_EQ(recording.finished.size(), 7u);
  for (std::size_t s = 0; s < 7; ++s) {
    EXPECT_EQ(recording.started[s], static_cast<StageKind>(s));
    EXPECT_EQ(recording.finished[s].stage, static_cast<StageKind>(s));
    EXPECT_GE(recording.finished[s].seconds, 0.0);
  }

  // Candidate-event coverage: every funnel transition is represented.
  EXPECT_EQ(recording.count(CandidateEventType::kEntered), result.n_total);
  const std::size_t failures = result.n_total - result.n_normalized;
  EXPECT_GE(recording.count(CandidateEventType::kFailed), failures > 0 ? 1u
                                                                       : 0u);
  EXPECT_GT(recording.count(CandidateEventType::kProbed), 0u);
  EXPECT_EQ(recording.count(CandidateEventType::kEarlyStopped),
            result.n_early_stopped);
  EXPECT_EQ(recording.count(CandidateEventType::kTrained),
            result.n_full_trains_run);
  EXPECT_EQ(recording.count(CandidateEventType::kCacheHit), 0u);  // cold run
  EXPECT_FALSE(stream_sink.str().empty());

  // Warm run: the cache-hit milestone fires for every served stage.
  gen::StateGenerator gen2(gen::gpt4_profile(), gen::PromptStrategy{}, 77);
  StateCandidateSource source2(gen2);
  SearchJob warm(fx.domain, config, 1234, source2,
                 FixedDesign{nullptr, &config.baseline_arch}, options);
  RecordingObserver warm_recording;
  warm.add_observer(&warm_recording);
  const auto warm_result = warm.run_to_completion();
  EXPECT_EQ(warm_result.n_probes_run, 0u);
  EXPECT_EQ(warm_recording.count(CandidateEventType::kCacheHit),
            warm_result.cache_hits());
  EXPECT_GT(warm_recording.count(CandidateEventType::kCacheHit), 0u);
}

// ---- sharding ---------------------------------------------------------------

TEST(ShardRunnerTest, FourShardRunMergesToSingleProcessResult) {
  Fixture fx;
  SearchConfig config = tiny_config();
  const std::string dir = fresh_dir("shards");

  // Single-process reference.
  const std::string single_path = fresh_path("shard_single");
  store::CandidateStore single_store(single_path,
                                     store_scope(fx.domain, config, 1234));
  gen::StateGenerator single_gen(gen::gpt4_profile(), gen::PromptStrategy{},
                                 77);
  StateCandidateSource single_source(single_gen);
  JobOptions options;
  options.store = &single_store;
  options.pool = &fx.pool;
  SearchJob single_job(fx.domain, config, 1234, single_source,
                       FixedDesign{nullptr, &config.baseline_arch}, options);
  const auto single_result = single_job.run_to_completion();

  // Four workers (one generator each, as four processes would have), then
  // the driver.
  ShardRunnerConfig shard_config;
  shard_config.num_shards = 4;
  shard_config.store_dir = dir;
  ShardRunner runner(fx.domain, config, 1234, shard_config, &fx.pool);
  std::size_t in_shard_total = 0;
  std::size_t probes_total = 0;
  for (std::size_t shard = 0; shard < 4; ++shard) {
    std::remove(runner.shard_store_path(shard).c_str());
    gen::StateGenerator worker_gen(gen::gpt4_profile(), gen::PromptStrategy{},
                                   77);
    StateCandidateSource worker_source(worker_gen);
    const auto worker_result =
        runner.run_worker(shard, worker_source,
                          FixedDesign{nullptr, &config.baseline_arch});
    EXPECT_EQ(worker_result.n_total, config.num_candidates);
    in_shard_total += worker_result.n_total - worker_result.n_out_of_shard;
    probes_total += worker_result.n_probes_run;
    // Workers stop before the cohort-global stages.
    EXPECT_EQ(worker_result.n_fully_trained, 0u);
  }
  // The shards partition the stream exactly.
  EXPECT_EQ(in_shard_total, config.num_candidates);
  EXPECT_EQ(probes_total, single_result.n_probes_run);

  std::remove(runner.merged_store_path().c_str());
  gen::StateGenerator driver_gen(gen::gpt4_profile(), gen::PromptStrategy{},
                                 77);
  StateCandidateSource driver_source(driver_gen);
  const auto merged_result = runner.merge_and_rank(
      driver_source, FixedDesign{nullptr, &config.baseline_arch});

  // The driver re-executes nothing below full training: every pre-check
  // and probe comes from the shard journals.
  EXPECT_EQ(merged_result.n_probes_run, 0u);
  EXPECT_EQ(merged_result.n_full_trains_run,
            single_result.n_full_trains_run);

  // Identical rankings...
  expect_same_result(single_result, merged_result);

  // ...and identical journals: same fingerprints, and per fingerprint the
  // byte-identical record line (order differs — grouped by shard vs by
  // stream — so compare as sorted line sets).
  store::CandidateStore merged_store(runner.merged_store_path(),
                                     runner.scope());
  auto sorted_lines = [](const std::string& path) {
    std::vector<std::string> lines;
    std::istringstream in(util::read_file(path));
    for (std::string line; std::getline(in, line);) {
      if (!line.empty()) lines.push_back(line);
    }
    std::sort(lines.begin(), lines.end());
    return lines;
  };
  EXPECT_EQ(sorted_lines(single_path),
            sorted_lines(runner.merged_store_path()));
  EXPECT_EQ(merged_store.size(), single_store.size());
}

TEST(ShardRunnerTest, MergeAndRankSurfacesMissingWorkerJournal) {
  Fixture fx;
  SearchConfig config = tiny_config();
  config.num_candidates = 4;
  ShardRunnerConfig shard_config;
  shard_config.num_shards = 3;
  shard_config.store_dir = fresh_dir("missing_shard");
  ShardRunner runner(fx.domain, config, 9, shard_config, nullptr);
  gen::StateGenerator generator(gen::gpt4_profile(), gen::PromptStrategy{},
                                5);
  StateCandidateSource source(generator);
  // No worker ever ran: the driver must refuse to silently rank nothing.
  EXPECT_THROW((void)runner.merge_and_rank(
                   source, FixedDesign{nullptr, &config.baseline_arch}),
               std::runtime_error);
}

// ---- resume folding ---------------------------------------------------------

TEST(SearchJobResume, ResumeServesJournaledStagesAndMatchesPipeline) {
  Fixture fx;
  const SearchConfig config = tiny_config();
  const std::string path = fresh_path("resume");
  store::CandidateStore store(path, store_scope(fx.domain, config, 4321));
  gen::StateGenerator generator(gen::gpt4_profile(), gen::PromptStrategy{},
                                88);
  StateCandidateSource source(generator);
  JobOptions options;
  options.store = &store;
  options.pool = &fx.pool;
  SearchJob first(fx.domain, config, 4321, source,
                  FixedDesign{nullptr, &config.baseline_arch}, options);
  const auto cold = first.run_to_completion();
  EXPECT_GT(cold.n_probes_run, 0u);

  // resume() rewinds the (already consumed) source itself.
  SearchJob resumed(fx.domain, config, 4321, source,
                    FixedDesign{nullptr, &config.baseline_arch}, options);
  const auto warm = resumed.resume();
  EXPECT_EQ(warm.n_probes_run, 0u);
  EXPECT_EQ(warm.n_full_trains_run, 0u);
  expect_same_result(cold, warm);
}

TEST(SearchJobResume, ResumeWithoutStoreThrows) {
  Fixture fx;
  const SearchConfig config = tiny_config();
  gen::StateGenerator generator(gen::gpt4_profile(), gen::PromptStrategy{},
                                7);
  StateCandidateSource source(generator);
  SearchJob job(fx.domain, config, 1, source,
                FixedDesign{nullptr, &config.baseline_arch});
  EXPECT_THROW((void)job.resume(), std::logic_error);
}

// ---- unified candidate stream ----------------------------------------------

TEST(CandidateSpecTest, MixedKindStreamRunsThroughOneFunnel) {
  Fixture fx;
  SearchConfig config = tiny_config();
  config.num_candidates = 8;
  config.full_train_top = 2;
  const auto fixed_state =
      dsl::StateProgram::compile(dsl::pensieve_state_source());

  // Four state programs and four architectures in one stream.
  gen::StateGenerator state_gen(gen::gpt4_profile(), gen::PromptStrategy{},
                                21);
  gen::ArchGenerator arch_gen(gen::gpt4_profile(), gen::PromptStrategy{}, 22,
                              0.25);
  std::vector<CandidateSpec> specs;
  StateCandidateSource states(state_gen);
  ArchCandidateSource archs(arch_gen);
  for (auto& spec : states.generate(4)) specs.push_back(std::move(spec));
  for (auto& spec : archs.generate(4)) specs.push_back(std::move(spec));
  VectorCandidateSource source(std::move(specs));

  JobOptions options;
  options.pool = &fx.pool;
  SearchJob job(fx.domain, config, 31, source,
                FixedDesign{&fixed_state, &config.baseline_arch}, options);
  const auto result = job.run_to_completion();
  EXPECT_EQ(result.n_total, 8u);
  EXPECT_GT(result.n_compiled, 0u);
  EXPECT_GT(result.n_fully_trained, 0u);
  // Kinds preserved end to end: arch candidates carry their spec, state
  // candidates their source.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(result.outcomes[i].arch.has_value());
  }
  for (std::size_t i = 4; i < 8; ++i) {
    EXPECT_TRUE(result.outcomes[i].arch.has_value());
  }
}

TEST(CandidateSpecTest, FingerprintsMatchTheHistoricalStoreKeys) {
  const SearchConfig config = tiny_config();
  const auto state = dsl::StateProgram::compile(dsl::pensieve_state_source());
  const auto spec = CandidateSpec::state_program(
      "id", dsl::pensieve_state_source());
  const FixedDesign fixed{&state, &config.baseline_arch};
  EXPECT_EQ(fingerprint_of(spec, fixed),
            store::combine(
                store::fingerprint_state_source(dsl::pensieve_state_source()),
                store::fingerprint_arch(config.baseline_arch)));

  nn::ArchSpec arch = nn::ArchSpec::pensieve();
  arch.rnn_hidden = 24;
  const auto arch_spec = CandidateSpec::architecture("id2", arch, "wider");
  EXPECT_EQ(fingerprint_of(arch_spec, fixed),
            store::combine(
                store::fingerprint_arch(arch),
                store::fingerprint_state_source(state.source())));

  // Missing fixed halves are loud, not silent.
  EXPECT_THROW((void)fingerprint_of(spec, FixedDesign{&state, nullptr}),
               std::invalid_argument);
  EXPECT_THROW((void)fingerprint_of(arch_spec, FixedDesign{nullptr, nullptr}),
               std::invalid_argument);
}

// ---- degenerate-baseline improvement ---------------------------------------

TEST(SearchResultTest, ImprovementDefinesDegenerateBaseline) {
  SearchResult result;
  // No best: no improvement, whatever the baseline.
  EXPECT_EQ(result.improvement(), 0.0);

  // Normal case: relative to |original|.
  result.best_index = 0;
  result.best_score = -1.0;
  result.original_score = -2.0;
  EXPECT_DOUBLE_EQ(result.improvement(), 0.5);

  // Degenerate baseline (original == 0): falls back to the absolute delta
  // instead of reporting zero improvement for a valid best.
  result.original_score = 0.0;
  result.best_score = 3.5;
  EXPECT_DOUBLE_EQ(result.improvement(), 3.5);
  result.best_score = -0.25;
  EXPECT_DOUBLE_EQ(result.improvement(), -0.25);
}

}  // namespace
}  // namespace nada::search

// Tests for the persistent candidate store: canonical serialization and
// fingerprint stability, journal round-trip and crash recovery, shard
// planning, and cache/resume behaviour of the integrated pipeline.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "core/pipeline.h"
#include "dsl/canonical.h"
#include "dsl/parser.h"
#include "store/candidate_store.h"
#include "store/convert.h"
#include "store/fingerprint.h"
#include "store/record_codec.h"
#include "store/shard.h"
#include "util/fs.h"
#include "util/scale.h"
#include "util/strings.h"

namespace nada::store {
namespace {

// A fresh journal path per test, cleaned of any previous run's leftovers.
std::string fresh_path(const std::string& name) {
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) /
       ("nada_store_test_" + name + ".jsonl"))
          .string();
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".tmp");
  return path;
}

// Fresh binary journal path (plus sidecar/tmp leftovers cleaned).
std::string fresh_binary_path(const std::string& name) {
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) /
       ("nada_store_test_" + name + ".nsb"))
          .string();
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".tmp");
  std::filesystem::remove(path + ".idx");
  std::filesystem::remove(path + ".idx.tmp");
  std::filesystem::remove(path + ".compact.tmp");
  return path;
}

StoreScope test_scope() { return StoreScope{"fcc", "test-digest"}; }

// Scoped NADA_STORE_FORMAT override with restore-on-exit.
class FormatEnvGuard {
 public:
  explicit FormatEnvGuard(const char* value) {
    const char* old = std::getenv("NADA_STORE_FORMAT");
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    if (value != nullptr) {
      ::setenv("NADA_STORE_FORMAT", value, 1);
    } else {
      ::unsetenv("NADA_STORE_FORMAT");
    }
  }
  ~FormatEnvGuard() {
    if (had_) {
      ::setenv("NADA_STORE_FORMAT", saved_.c_str(), 1);
    } else {
      ::unsetenv("NADA_STORE_FORMAT");
    }
  }

 private:
  std::string saved_;
  bool had_ = false;
};

OutcomeRecord make_test_record(std::uint64_t salt, Stage stage) {
  OutcomeRecord record;
  record.fingerprint = fingerprint_text("record-" + std::to_string(salt));
  record.stage = stage;
  record.id = "cand-" + std::to_string(salt);
  record.source = "emit \"x\" = " + std::to_string(salt) + ";\n";
  record.compiled = true;
  record.normalized = true;
  if (stage >= Stage::kProbed) {
    record.early_probed = true;
    record.early_rewards = {0.1 * static_cast<double>(salt), 0.5, -0.25};
  }
  if (stage >= Stage::kTrained) {
    record.fully_trained = true;
    record.test_score = 1.5 + static_cast<double>(salt);
    record.emulation_score = 0.75;
    record.curve_epochs = {8, 16, 24};
    record.median_curve = {0.2, 0.4, 0.6};
  }
  return record;
}

// ---- canonical serialization ----------------------------------------------

TEST(Canonical, FormattingAndNamingNormalized) {
  const std::string a =
      "let smooth = ema(throughput_mbps, 0.5);\n"
      "emit \"tput\" = smooth / 8.0;\n";
  const std::string b =
      "# an explanatory comment, as LLM output carries\n"
      "let s2=ema( throughput_mbps ,0.50 ) ;\n"
      "emit \"tput\"=( s2 / 8.00 );";
  const std::string ca = dsl::canonical_source(dsl::parse(a));
  const std::string cb = dsl::canonical_source(dsl::parse(b));
  EXPECT_EQ(ca, cb);
  EXPECT_NE(ca.find("v0"), std::string::npos);   // let binding renamed
  EXPECT_NE(ca.find("tput"), std::string::npos); // row name kept
}

TEST(Canonical, DistinctProgramsStayDistinct) {
  const auto a = dsl::canonical_source(
      dsl::parse("emit \"x\" = buffer_size_s / 10.0;"));
  const auto b = dsl::canonical_source(
      dsl::parse("emit \"x\" = buffer_size_s / 7.0;"));
  EXPECT_NE(a, b);
}

TEST(Canonical, FreeVariablesCannotCaptureRenamedBindings) {
  // "v0" as a free (input) reference must not collide with the canonical
  // name of a let binding — these programs are semantically different.
  const std::string bound = "let x = 1.0;\nemit \"r\" = x;";
  const std::string free_v0 = "let x = 1.0;\nemit \"r\" = v0;";
  EXPECT_NE(dsl::canonical_source(dsl::parse(bound)),
            dsl::canonical_source(dsl::parse(free_v0)));
  EXPECT_NE(fingerprint_state_source(bound), fingerprint_state_source(free_v0));
}

TEST(Canonical, ShadowedBindingsRenameConsistently) {
  const std::string a =
      "let t = throughput_mbps;\nlet t = t * 2.0;\nemit \"x\" = t;";
  const std::string b =
      "let u = throughput_mbps;\nlet w = u * 2.0;\nemit \"x\" = w;";
  EXPECT_EQ(dsl::canonical_source(dsl::parse(a)),
            dsl::canonical_source(dsl::parse(b)));
}

// ---- fingerprints ----------------------------------------------------------

TEST(Fingerprint, StableAcrossReformattedSources) {
  const std::string a = dsl::pensieve_state_source();
  // Reformat: inject comments and blank lines, keep the AST identical.
  std::string b = "# reformatted\n\n";
  for (char c : a) {
    b += c;
    if (c == ';') b += "   ";
  }
  EXPECT_EQ(fingerprint_state_source(a), fingerprint_state_source(b));
  EXPECT_NE(fingerprint_state_source(a),
            fingerprint_state_source("emit \"x\" = buffer_size_s;"));
}

TEST(Fingerprint, UnparsableSourcesHashByRawText) {
  const std::string broken = "let ) = 3;";
  EXPECT_EQ(fingerprint_state_source(broken),
            fingerprint_state_source("  " + broken + "\n"));
  EXPECT_NE(fingerprint_state_source(broken),
            fingerprint_state_source("let ( = 3;"));
}

TEST(Fingerprint, ArchEncodingCoversEveryField) {
  const nn::ArchSpec base = nn::ArchSpec::pensieve();
  EXPECT_EQ(fingerprint_arch(base), fingerprint_arch(nn::ArchSpec::pensieve()));
  nn::ArchSpec changed = base;
  changed.activation = nn::Activation::kLeakyRelu;
  EXPECT_NE(fingerprint_arch(base), fingerprint_arch(changed));
  changed = base;
  changed.shared_trunk = true;
  EXPECT_NE(fingerprint_arch(base), fingerprint_arch(changed));
  changed = base;
  changed.merge_layers += 1;
  EXPECT_NE(fingerprint_arch(base), fingerprint_arch(changed));
}

TEST(Fingerprint, CombineIsOrderSensitive) {
  const Fingerprint a = fingerprint_text("a");
  const Fingerprint b = fingerprint_text("b");
  EXPECT_NE(combine(a, b), combine(b, a));
  EXPECT_EQ(combine(a, b), combine(a, b));
}

TEST(Fingerprint, HexRoundTrip) {
  const Fingerprint fp = fingerprint_text("round trip");
  const auto parsed = Fingerprint::from_hex(fp.hex());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, fp);
  EXPECT_FALSE(Fingerprint::from_hex("zz").has_value());
  EXPECT_FALSE(
      Fingerprint::from_hex(std::string(32, 'g')).has_value());
}

// ---- candidate store -------------------------------------------------------

TEST(CandidateStore, RoundTripAllStages) {
  const std::string path = fresh_path("roundtrip");
  const auto checked = make_test_record(1, Stage::kChecked);
  auto probed = make_test_record(2, Stage::kProbed);
  probed.compile_error = "blew up \"late\"\nwith a newline";
  auto trained = make_test_record(3, Stage::kTrained);
  trained.arch = nn::ArchSpec::pensieve();
  trained.arch->temporal = nn::TemporalUnit::kLstm;
  trained.arch->shared_trunk = true;
  {
    CandidateStore store(path, test_scope());
    EXPECT_TRUE(store.put(checked));
    EXPECT_TRUE(store.put(probed));
    EXPECT_TRUE(store.put(trained));
  }
  CandidateStore reopened(path, test_scope());
  EXPECT_EQ(reopened.size(), 3u);
  EXPECT_EQ(reopened.recovered_line_errors(), 0u);

  const auto got = reopened.lookup(trained.fingerprint);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->stage, Stage::kTrained);
  EXPECT_EQ(got->id, trained.id);
  EXPECT_EQ(got->source, trained.source);
  ASSERT_TRUE(got->arch.has_value());
  EXPECT_EQ(got->arch->temporal, nn::TemporalUnit::kLstm);
  EXPECT_TRUE(got->arch->shared_trunk);
  EXPECT_TRUE(got->fully_trained);
  EXPECT_DOUBLE_EQ(got->test_score, trained.test_score);
  EXPECT_EQ(got->curve_epochs, trained.curve_epochs);
  EXPECT_EQ(got->median_curve, trained.median_curve);

  const auto got_probed = reopened.lookup(probed.fingerprint);
  ASSERT_TRUE(got_probed.has_value());
  EXPECT_EQ(got_probed->compile_error, probed.compile_error);
  EXPECT_EQ(got_probed->early_rewards, probed.early_rewards);
  EXPECT_FALSE(got_probed->arch.has_value());
}

TEST(CandidateStore, PutIsMonotonePerFingerprint) {
  const std::string path = fresh_path("monotone");
  CandidateStore store(path, test_scope());
  auto record = make_test_record(7, Stage::kChecked);
  EXPECT_TRUE(store.put(record));
  EXPECT_FALSE(store.put(record));  // same stage: not re-journaled
  record.stage = Stage::kProbed;
  record.early_probed = true;
  record.early_rewards = {1.0};
  EXPECT_TRUE(store.put(record));
  record.stage = Stage::kChecked;  // regression attempt
  EXPECT_FALSE(store.put(record));
  EXPECT_EQ(store.size(), 1u);
  const auto got = store.lookup(record.fingerprint);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->stage, Stage::kProbed);

  // Exactly two journal lines: one per accepted put.
  const std::string content = util::read_file(path);
  std::size_t lines = 0;
  for (char c : content) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 2u);
}

TEST(CandidateStore, RecoversFromTornFinalLine) {
  const std::string path = fresh_path("torn");
  {
    CandidateStore store(path, test_scope());
    store.put(make_test_record(1, Stage::kProbed));
    store.put(make_test_record(2, Stage::kTrained));
  }
  // Simulate a crash mid-append: keep the first record plus a prefix of the
  // second line.
  const std::string content = util::read_file(path);
  const std::size_t first_newline = content.find('\n');
  ASSERT_NE(first_newline, std::string::npos);
  const std::string torn =
      content.substr(0, first_newline + 1) +
      content.substr(first_newline + 1, (content.size() - first_newline) / 2);
  util::write_file_atomic(path, torn);

  CandidateStore recovered(path, test_scope());
  EXPECT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered.recovered_line_errors(), 1u);
  EXPECT_TRUE(
      recovered.lookup(make_test_record(1, Stage::kProbed).fingerprint)
          .has_value());
  // The journal stays usable after recovery.
  EXPECT_TRUE(recovered.put(make_test_record(3, Stage::kChecked)));
  CandidateStore reopened(path, test_scope());
  EXPECT_EQ(reopened.size(), 2u);
}

TEST(CandidateStore, CompactRewritesUpgradesAndTornTail) {
  const std::string path = fresh_path("compact");
  {
    // A journal full of superseded stages: each record journaled at every
    // stage it passed through (3 + 2 + 1 = 6 lines for 3 fingerprints).
    CandidateStore store(path, test_scope());
    store.put(make_test_record(1, Stage::kChecked));
    store.put(make_test_record(1, Stage::kProbed));
    store.put(make_test_record(1, Stage::kTrained));
    store.put(make_test_record(2, Stage::kChecked));
    store.put(make_test_record(2, Stage::kProbed));
    store.put(make_test_record(3, Stage::kChecked));
  }
  // Plus a crash's torn tail.
  {
    const std::string content = util::read_file(path);
    util::write_file_atomic(path,
                            content + "{\"fp\": \"deadbeef\", \"trunc");
  }

  CandidateStore store(path, test_scope());
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.recovered_line_errors(), 1u);
  const std::size_t dropped = store.compact();
  // 7 meaningful lines on disk -> 3 latest-stage records.
  EXPECT_EQ(dropped, 4u);
  EXPECT_EQ(store.recovered_line_errors(), 0u);

  // The rewritten journal holds exactly one line per fingerprint, at the
  // furthest stage, and stays fully usable.
  {
    const std::string content = util::read_file(path);
    std::size_t lines = 0;
    for (char c : content) lines += c == '\n' ? 1 : 0;
    EXPECT_EQ(lines, 3u);
  }
  const auto r1 = store.lookup(make_test_record(1, Stage::kChecked).fingerprint);
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->stage, Stage::kTrained);
  EXPECT_TRUE(store.put(make_test_record(4, Stage::kChecked)));

  CandidateStore reopened(path, test_scope());
  EXPECT_EQ(reopened.size(), 4u);
  EXPECT_EQ(reopened.recovered_line_errors(), 0u);
  const auto r1_again =
      reopened.lookup(make_test_record(1, Stage::kChecked).fingerprint);
  ASSERT_TRUE(r1_again.has_value());
  EXPECT_EQ(r1_again->stage, Stage::kTrained);
  EXPECT_EQ(r1_again->test_score, make_test_record(1, Stage::kTrained).test_score);
  // Idempotent: a second compaction drops nothing.
  EXPECT_EQ(reopened.compact(), 0u);
  EXPECT_EQ(reopened.size(), 4u);
}

TEST(CandidateStore, ForeignScopeLinesAreSkipped) {
  const std::string path = fresh_path("scope");
  {
    CandidateStore store(path, test_scope());
    store.put(make_test_record(1, Stage::kChecked));
  }
  CandidateStore other(path, StoreScope{"fcc", "other-digest"});
  EXPECT_EQ(other.size(), 0u);
  EXPECT_EQ(other.recovered_line_errors(), 1u);
}

TEST(CandidateStore, MergeUnionsAndKeepsFurthestStage) {
  const std::string path_a = fresh_path("merge_a");
  const std::string path_b = fresh_path("merge_b");
  CandidateStore a(path_a, test_scope());
  CandidateStore b(path_b, test_scope());
  a.put(make_test_record(1, Stage::kChecked));
  a.put(make_test_record(2, Stage::kProbed));
  b.put(make_test_record(2, Stage::kTrained));  // same candidate, further
  b.put(make_test_record(3, Stage::kChecked));
  EXPECT_EQ(a.merge_from(b), 2u);
  EXPECT_EQ(a.size(), 3u);
  const auto got = a.lookup(make_test_record(2, Stage::kProbed).fingerprint);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->stage, Stage::kTrained);

  CandidateStore mismatched(fresh_path("merge_c"),
                            StoreScope{"fcc", "other"});
  EXPECT_THROW((void)a.merge_from(mismatched), std::invalid_argument);
}

TEST(CandidateStore, DefaultPathHonorsEnvDir) {
  ::setenv("NADA_STORE_DIR", "/tmp/nada-test-stores", 1);
  const std::string path = default_store_path(test_scope());
  EXPECT_EQ(path.rfind("/tmp/nada-test-stores/", 0), 0u);
  EXPECT_NE(path.find("fcc-"), std::string::npos);
  ::unsetenv("NADA_STORE_DIR");
}

// ---- shard planning --------------------------------------------------------

TEST(ShardPlan, RangesPartitionTheWholeSpace) {
  for (std::size_t n : {1u, 2u, 3u, 7u, 16u}) {
    const ShardPlan plan(n);
    EXPECT_EQ(plan.range(0).lo, 0u);
    EXPECT_EQ(plan.range(n - 1).hi, ~std::uint64_t{0});
    for (std::size_t s = 0; s + 1 < n; ++s) {
      EXPECT_EQ(plan.range(s).hi + 1, plan.range(s + 1).lo)
          << "gap between shards " << s << " and " << s + 1;
    }
  }
  EXPECT_THROW(ShardPlan(0), std::invalid_argument);
}

TEST(ShardPlan, ShardOfAgreesWithRanges) {
  const ShardPlan plan(5);
  for (int i = 0; i < 500; ++i) {
    const Fingerprint fp = fingerprint_text("candidate-" + std::to_string(i));
    const std::size_t shard = plan.shard_of(fp);
    ASSERT_LT(shard, 5u);
    const auto range = plan.range(shard);
    EXPECT_GE(fp.hi, range.lo);
    EXPECT_LE(fp.hi, range.hi);
  }
}

TEST(ShardPlan, PartitionCoversEveryCandidateOnce) {
  std::vector<Fingerprint> fps;
  for (int i = 0; i < 200; ++i) {
    fps.push_back(fingerprint_text("p-" + std::to_string(i)));
  }
  const ShardPlan plan(4);
  const auto shards = plan.partition(fps);
  ASSERT_EQ(shards.size(), 4u);
  std::vector<bool> seen(fps.size(), false);
  for (std::size_t s = 0; s < shards.size(); ++s) {
    for (std::size_t idx : shards[s]) {
      EXPECT_EQ(plan.shard_of(fps[idx]), s);
      EXPECT_FALSE(seen[idx]);
      seen[idx] = true;
    }
  }
  for (bool b : seen) EXPECT_TRUE(b);
}

TEST(ShardPlan, MergeShardFilesUnionsWorkerStores) {
  const ShardPlan plan(3);
  std::vector<std::string> paths;
  for (std::size_t s = 0; s < 3; ++s) {
    paths.push_back(fresh_path("shard" + std::to_string(s)));
  }
  // Three workers journal only the candidates their range owns.
  std::size_t total = 0;
  {
    std::vector<std::unique_ptr<CandidateStore>> workers;
    for (const auto& path : paths) {
      workers.push_back(std::make_unique<CandidateStore>(path, test_scope()));
    }
    for (std::uint64_t salt = 0; salt < 60; ++salt) {
      auto record = make_test_record(salt, Stage::kProbed);
      workers[plan.shard_of(record.fingerprint)]->put(record);
      ++total;
    }
  }
  const std::string merged_path = fresh_path("shard_merged");
  CandidateStore merged(merged_path, test_scope());
  EXPECT_EQ(merge_shard_files(paths, merged), total);
  EXPECT_EQ(merged.size(), total);
  for (std::uint64_t salt = 0; salt < 60; ++salt) {
    EXPECT_TRUE(
        merged.lookup(make_test_record(salt, Stage::kProbed).fingerprint)
            .has_value());
  }

  // A missing shard journal is a worker that never reported: loud failure,
  // not a silently empty merge.
  const std::vector<std::string> with_missing = {paths[0],
                                                 fresh_path("shard_gone")};
  EXPECT_THROW((void)merge_shard_files(with_missing, merged),
               std::runtime_error);
}

TEST(ShardPlan, MergeShardFilesFiltersMixedDomainJournals) {
  // One shard set serving two domains at once: every shard journal holds
  // ABR-scope and CC-scope lines interleaved (workers for both searches
  // sharing a store directory and shard files). A merge must accept
  // exactly the destination's scope and skip the other domain's records —
  // never alias them together.
  const StoreScope abr_scope{"4G", "abr-digest"};
  const StoreScope cc_scope{"cc-4G", "cc-digest"};
  const std::vector<std::uint64_t> salts = {0, 1, 2, 3, 4,
                                            10, 11, 12, 13, 14};
  std::vector<std::string> paths;
  for (std::size_t s = 0; s < 2; ++s) {
    const std::string path = fresh_path("mixed_shard" + std::to_string(s));
    std::string content;
    for (std::size_t k = 5 * s; k < 5 * s + 5; ++k) {
      content += CandidateStore::encode_line(
                     make_test_record(salts[k], Stage::kProbed), abr_scope) +
                 "\n";
      content += CandidateStore::encode_line(
                     make_test_record(100 + salts[k], Stage::kTrained),
                     cc_scope) +
                 "\n";
    }
    util::write_file_atomic(path, content);
    paths.push_back(path);
  }

  CandidateStore abr_merged(fresh_path("mixed_abr"), abr_scope);
  EXPECT_EQ(merge_shard_files(paths, abr_merged), 10u);
  EXPECT_EQ(abr_merged.size(), 10u);
  for (std::uint64_t salt : salts) {
    const auto record = abr_merged.lookup(
        make_test_record(salt, Stage::kProbed).fingerprint);
    ASSERT_TRUE(record.has_value());
    EXPECT_EQ(record->stage, Stage::kProbed);
    // The CC records with shifted salts never leaked in.
    EXPECT_FALSE(abr_merged
                     .lookup(make_test_record(100 + salt, Stage::kTrained)
                                 .fingerprint)
                     .has_value());
  }

  CandidateStore cc_merged(fresh_path("mixed_cc"), cc_scope);
  EXPECT_EQ(merge_shard_files(paths, cc_merged), 10u);
  EXPECT_EQ(cc_merged.size(), 10u);
  for (std::uint64_t salt : salts) {
    const auto record = cc_merged.lookup(
        make_test_record(100 + salt, Stage::kTrained).fingerprint);
    ASSERT_TRUE(record.has_value());
    EXPECT_EQ(record->stage, Stage::kTrained);
    EXPECT_TRUE(record->fully_trained);
  }
}

// ---- binary record codec ---------------------------------------------------

namespace {

// A randomized record covering the whole field space: arbitrary bytes in
// strings (binary framing must not care), non-finite doubles (which the
// binary codec round-trips bit-exactly), optional arch blocks.
OutcomeRecord random_record(std::mt19937_64& rng) {
  auto byte = [&rng] { return static_cast<char>(rng() & 0xff); };
  auto text = [&](std::size_t max_len) {
    std::string s(rng() % (max_len + 1), '\0');
    for (char& c : s) c = byte();
    return s;
  };
  auto real = [&rng]() -> double {
    switch (rng() % 6) {
      case 0: return std::numeric_limits<double>::quiet_NaN();
      case 1: return std::numeric_limits<double>::infinity();
      case 2: return -std::numeric_limits<double>::infinity();
      case 3: return std::numeric_limits<double>::denorm_min();
      default:
        return static_cast<double>(static_cast<std::int64_t>(rng())) / 3.0;
    }
  };
  auto reals = [&](std::size_t max_len) {
    std::vector<double> v(rng() % (max_len + 1));
    for (double& d : v) d = real();
    return v;
  };
  OutcomeRecord r;
  r.fingerprint.hi = rng() | 1;  // never the zero fingerprint
  r.fingerprint.lo = rng();
  r.stage = static_cast<Stage>(rng() % 3);
  r.id = text(24);
  r.source = text(64);
  r.compiled = (rng() & 1) != 0;
  r.compile_error = text(32);
  r.normalized = (rng() & 1) != 0;
  r.normalization_error = text(32);
  r.early_probed = (rng() & 1) != 0;
  r.early_rewards = reals(6);
  r.fully_trained = (rng() & 1) != 0;
  r.test_score = real();
  r.emulation_score = real();
  r.curve_epochs = reals(6);
  r.median_curve = reals(6);
  if ((rng() & 1) != 0) {
    nn::ArchSpec arch;
    arch.temporal = static_cast<nn::TemporalUnit>(rng() % 4);
    arch.activation = static_cast<nn::Activation>(rng() % 6);
    arch.shared_trunk = (rng() & 1) != 0;
    arch.conv_filters = rng() % 512;
    arch.conv_kernel = rng() % 16;
    arch.rnn_hidden = rng() % 512;
    arch.scalar_hidden = rng() % 512;
    arch.merge_hidden = rng() % 512;
    arch.merge_layers = rng() % 8;
    r.arch = arch;
  }
  return r;
}

}  // namespace

TEST(RecordCodec, RandomizedBinaryRoundTripProperty) {
  std::mt19937_64 rng(0x5eedULL);
  for (int trial = 0; trial < 300; ++trial) {
    StoreScope scope;
    scope.env = "env-" + std::to_string(rng() % 4);
    scope.config_digest = "digest-" + std::to_string(rng() % 4);
    const OutcomeRecord record = random_record(rng);
    const std::string frame = encode_record(record, scope);

    // Scope-preserving decode recovers scope + record, and re-encoding
    // reproduces the frame byte for byte (the strongest field-equality
    // check: it covers NaN/inf bit patterns JSON cannot express).
    const auto scoped = decode_record_any(frame);
    ASSERT_TRUE(scoped.has_value());
    EXPECT_EQ(scoped->scope, scope);
    EXPECT_EQ(encode_record(scoped->record, scoped->scope), frame);

    // Scope-filtered decode: accepts its own scope, rejects others.
    EXPECT_TRUE(decode_record(frame, scope).has_value());
    StoreScope other = scope;
    other.env += "-other";
    EXPECT_FALSE(decode_record(frame, other).has_value());

    // Any single flipped byte is detected (length, checksum, or body).
    std::string tampered = frame;
    const std::size_t pos = rng() % tampered.size();
    tampered[pos] = static_cast<char>(tampered[pos] ^ (1u << (rng() % 8)));
    EXPECT_FALSE(decode_record_any(tampered).has_value())
        << "flip at byte " << pos << " went undetected";
  }
}

TEST(StoreConvert, JsonlToBinaryToJsonlIsByteIdentical) {
  const std::string jsonl_path = fresh_path("convert_src");
  {
    // A realistic journal: per-fingerprint stage history (multiple lines
    // per record), plus a second scope's lines interleaved — conversion
    // must preserve all of it, order, duplicates, and scopes included.
    CandidateStore store(jsonl_path, test_scope());
    for (std::uint64_t salt = 0; salt < 8; ++salt) {
      store.put(make_test_record(salt, Stage::kChecked));
      if (salt % 2 == 0) store.put(make_test_record(salt, Stage::kProbed));
      if (salt % 4 == 0) store.put(make_test_record(salt, Stage::kTrained));
    }
  }
  {
    std::ofstream out(jsonl_path, std::ios::binary | std::ios::app);
    const StoreScope other{"other-env", "other-digest"};
    auto foreign = make_test_record(99, Stage::kTrained);
    foreign.arch = nn::ArchSpec::pensieve();
    out << CandidateStore::encode_line(foreign, other) << "\n";
  }
  const std::string original = util::read_file(jsonl_path);

  const std::string nsb_path = fresh_binary_path("convert_mid");
  const std::string back_path = fresh_path("convert_back");
  const auto to_bin = convert_journal(jsonl_path, nsb_path);
  EXPECT_EQ(to_bin.records, 15u);  // 8 + 4 + 2 + 1 foreign
  EXPECT_EQ(to_bin.skipped, 0u);
  const auto to_jsonl = convert_journal(nsb_path, back_path);
  EXPECT_EQ(to_jsonl.records, 15u);
  EXPECT_EQ(to_jsonl.skipped, 0u);
  EXPECT_EQ(util::read_file(back_path), original);

  // And the binary intermediate opens as a working store with the same
  // record set.
  CandidateStore store(nsb_path, test_scope());
  EXPECT_EQ(store.size(), 8u);
  const auto got = store.lookup(make_test_record(4, Stage::kTrained).fingerprint);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->stage, Stage::kTrained);
}

// ---- binary store backend --------------------------------------------------

TEST(BinaryStore, RoundTripAllStagesThroughIndexedReopen) {
  const std::string path = fresh_binary_path("roundtrip");
  const auto checked = make_test_record(1, Stage::kChecked);
  auto probed = make_test_record(2, Stage::kProbed);
  probed.compile_error = "blew up \"late\"\nwith a newline";
  auto trained = make_test_record(3, Stage::kTrained);
  trained.arch = nn::ArchSpec::pensieve();
  trained.arch->temporal = nn::TemporalUnit::kLstm;
  trained.arch->shared_trunk = true;
  {
    CandidateStore store(path, test_scope());
    EXPECT_EQ(store.format(), StoreFormat::kBinary);
    EXPECT_TRUE(store.put(checked));
    EXPECT_TRUE(store.put(probed));
    EXPECT_TRUE(store.put(trained));
    EXPECT_EQ(store.size(), 3u);
    // Lookups served straight from the in-memory delta still read the
    // journal frame (one decode per hit).
    const auto got = store.lookup(probed.fingerprint);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->compile_error, probed.compile_error);
  }
  // Clean destruction persisted the sidecar: reopen touches no frame.
  CandidateStore reopened(path, test_scope());
  EXPECT_EQ(reopened.size(), 3u);
  EXPECT_EQ(reopened.recovered_line_errors(), 0u);
  EXPECT_EQ(reopened.decoded_frames(), 0u);

  const auto got = reopened.lookup(trained.fingerprint);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(reopened.decoded_frames(), 1u);  // exactly one frame read
  EXPECT_EQ(got->stage, Stage::kTrained);
  EXPECT_EQ(got->id, trained.id);
  EXPECT_EQ(got->source, trained.source);
  ASSERT_TRUE(got->arch.has_value());
  EXPECT_EQ(got->arch->temporal, nn::TemporalUnit::kLstm);
  EXPECT_TRUE(got->arch->shared_trunk);
  EXPECT_DOUBLE_EQ(got->test_score, trained.test_score);
  EXPECT_EQ(got->curve_epochs, trained.curve_epochs);
  EXPECT_EQ(got->median_curve, trained.median_curve);
  EXPECT_FALSE(reopened.lookup(make_test_record(77, Stage::kChecked)
                                   .fingerprint)
                   .has_value());

  // records() matches the JSONL contract: latest record per fingerprint in
  // first-sighting order.
  const auto records = reopened.records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].fingerprint.hex(), checked.fingerprint.hex());
  EXPECT_EQ(records[2].fingerprint.hex(), trained.fingerprint.hex());
}

TEST(BinaryStore, PutIsMonotoneAndAppendsOneFramePerAcceptedPut) {
  const std::string path = fresh_binary_path("monotone");
  CandidateStore store(path, test_scope());
  auto record = make_test_record(7, Stage::kChecked);
  EXPECT_TRUE(store.put(record));
  EXPECT_FALSE(store.put(record));  // same stage: not re-journaled
  const auto after_one = std::filesystem::file_size(path);
  record.stage = Stage::kProbed;
  record.early_probed = true;
  record.early_rewards = {1.0};
  EXPECT_TRUE(store.put(record));
  record.stage = Stage::kChecked;  // regression attempt
  EXPECT_FALSE(store.put(record));
  EXPECT_EQ(store.size(), 1u);
  const auto got = store.lookup(record.fingerprint);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->stage, Stage::kProbed);
  // Exactly two frames: one per accepted put.
  const std::string content = util::read_file(path);
  const ScanStats stats = scan_binary_journal(
      std::string_view(content).substr(kBinaryJournalMagic.size()), nullptr);
  EXPECT_EQ(stats.frames, 2u);
  EXPECT_FALSE(stats.torn_tail);
  EXPECT_GT(std::filesystem::file_size(path), after_one);
}

TEST(BinaryStore, TruncationAtEveryOffsetOfFinalRecordRecovers) {
  const std::string path = fresh_binary_path("torture_src");
  std::uint64_t final_frame_start = 0;
  {
    CandidateStore store(path, test_scope());
    store.put(make_test_record(1, Stage::kProbed));
    auto trained = make_test_record(2, Stage::kTrained);
    trained.arch = nn::ArchSpec::pensieve();
    store.put(trained);
    final_frame_start = std::filesystem::file_size(path);
    store.put(make_test_record(3, Stage::kTrained));
  }
  const std::string full = util::read_file(path);
  ASSERT_GT(full.size(), final_frame_start);

  const std::string work = fresh_binary_path("torture_work");
  for (std::uint64_t cut = final_frame_start; cut < full.size(); ++cut) {
    util::write_file_atomic(work, full.substr(0, cut));
    std::filesystem::remove(work + ".idx");
    CandidateStore recovered(work, test_scope());
    // Every durable prior record survives, at every truncation point.
    EXPECT_EQ(recovered.size(), 2u) << "cut at byte " << cut;
    EXPECT_TRUE(
        recovered.lookup(make_test_record(1, Stage::kProbed).fingerprint)
            .has_value())
        << "cut at byte " << cut;
    EXPECT_TRUE(
        recovered.lookup(make_test_record(2, Stage::kTrained).fingerprint)
            .has_value())
        << "cut at byte " << cut;
    // A torn partial frame counts as one recovered error and is truncated
    // away; cutting exactly at the frame boundary is a clean journal.
    const std::size_t expected_errors = cut == final_frame_start ? 0u : 1u;
    EXPECT_EQ(recovered.recovered_line_errors(), expected_errors)
        << "cut at byte " << cut;
    EXPECT_EQ(std::filesystem::file_size(work), final_frame_start)
        << "cut at byte " << cut;
    // The journal stays usable after recovery.
    EXPECT_TRUE(recovered.put(make_test_record(4, Stage::kChecked)));
  }
  // Spot-check the post-recovery append is durable.
  CandidateStore reopened(work, test_scope());
  EXPECT_EQ(reopened.size(), 3u);
}

TEST(BinaryStore, FlippedBodyByteIsSkippedOnRebuild) {
  const std::string path = fresh_binary_path("flip_rebuild");
  std::uint64_t second_frame_start = 0;
  {
    CandidateStore store(path, test_scope());
    store.put(make_test_record(1, Stage::kProbed));
    second_frame_start = std::filesystem::file_size(path);
    store.put(make_test_record(2, Stage::kTrained));
    store.put(make_test_record(3, Stage::kChecked));
  }
  std::string content = util::read_file(path);
  // Flip one byte inside the second record's checksummed body.
  const std::size_t victim = second_frame_start + kFrameHeaderBytes + 3;
  content[victim] = static_cast<char>(content[victim] ^ 0x40);
  util::write_file_atomic(path, content);
  std::filesystem::remove(path + ".idx");

  CandidateStore recovered(path, test_scope());
  EXPECT_EQ(recovered.size(), 2u);
  EXPECT_EQ(recovered.recovered_line_errors(), 1u);
  // Framing survived: the record AFTER the corrupt frame is still served.
  EXPECT_TRUE(
      recovered.lookup(make_test_record(3, Stage::kChecked).fingerprint)
          .has_value());
  EXPECT_FALSE(
      recovered.lookup(make_test_record(2, Stage::kTrained).fingerprint)
          .has_value());
}

TEST(BinaryStore, FlippedByteUnderValidSidecarIsDetectedAtLookup) {
  const std::string path = fresh_binary_path("flip_lazy");
  std::uint64_t second_frame_start = 0;
  {
    CandidateStore store(path, test_scope());
    store.put(make_test_record(1, Stage::kProbed));
    second_frame_start = std::filesystem::file_size(path);
    store.put(make_test_record(2, Stage::kTrained));
    store.put(make_test_record(3, Stage::kChecked));
  }
  std::string content = util::read_file(path);
  const std::size_t victim = second_frame_start + kFrameHeaderBytes + 3;
  content[victim] = static_cast<char>(content[victim] ^ 0x40);
  util::write_file_atomic(path, content);
  // The sidecar still matches the journal's length, so the open trusts it
  // (indexed opens never re-checksum every frame — that is the point).
  CandidateStore store(path, test_scope());
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.decoded_frames(), 0u);
  EXPECT_EQ(store.recovered_line_errors(), 0u);
  // The flip surfaces lazily, at the one lookup that touches the frame:
  // a counted miss, not a crash, and other records are unaffected.
  EXPECT_FALSE(store.lookup(make_test_record(2, Stage::kTrained).fingerprint)
                   .has_value());
  EXPECT_EQ(store.recovered_line_errors(), 1u);
  EXPECT_TRUE(store.lookup(make_test_record(1, Stage::kProbed).fingerprint)
                  .has_value());
  EXPECT_TRUE(store.lookup(make_test_record(3, Stage::kChecked).fingerprint)
                  .has_value());
}

TEST(BinaryStore, CorruptOrMissingSidecarIsRebuilt) {
  const std::string path = fresh_binary_path("sidecar");
  {
    CandidateStore store(path, test_scope());
    for (std::uint64_t salt = 0; salt < 5; ++salt) {
      store.put(make_test_record(salt, Stage::kProbed));
    }
  }
  ASSERT_TRUE(util::file_exists(path + ".idx"));

  // Corrupt sidecar: entry checksum fails, full rebuild, no record lost.
  {
    std::string idx = util::read_file(path + ".idx");
    idx[idx.size() / 2] = static_cast<char>(idx[idx.size() / 2] ^ 0x01);
    util::write_file_atomic(path + ".idx", idx);
    CandidateStore store(path, test_scope());
    EXPECT_EQ(store.size(), 5u);
    EXPECT_EQ(store.recovered_line_errors(), 0u);
    for (std::uint64_t salt = 0; salt < 5; ++salt) {
      EXPECT_TRUE(
          store.lookup(make_test_record(salt, Stage::kProbed).fingerprint)
              .has_value());
    }
  }
  // The rebuild re-persisted a valid sidecar: next open is indexed again.
  {
    CandidateStore store(path, test_scope());
    EXPECT_EQ(store.size(), 5u);
    EXPECT_EQ(store.decoded_frames(), 0u);
  }
  // Deleted sidecar: same story.
  std::filesystem::remove(path + ".idx");
  {
    CandidateStore store(path, test_scope());
    EXPECT_EQ(store.size(), 5u);
    EXPECT_EQ(store.recovered_line_errors(), 0u);
  }
  // A sidecar built under a different scope is never trusted.
  {
    const std::string foreign = fresh_binary_path("sidecar_foreign");
    CandidateStore other(foreign, StoreScope{"other", "digest"});
    other.put(make_test_record(50, Stage::kProbed));
    other.rebuild_index();
    std::filesystem::copy_file(
        foreign + ".idx", path + ".idx",
        std::filesystem::copy_options::overwrite_existing);
    CandidateStore store(path, test_scope());
    EXPECT_EQ(store.size(), 5u);  // rebuilt, not borrowed
  }
}

TEST(BinaryStore, StaleSidecarTriggersTailScanOnly) {
  const std::string path = fresh_binary_path("tail_scan");
  {
    CandidateStore store(path, test_scope());
    store.put(make_test_record(1, Stage::kChecked));
    store.put(make_test_record(2, Stage::kProbed));
  }  // sidecar covers 2 records
  {
    // Append more records, then drop the store WITHOUT letting it persist:
    // simulate by copying the fresh sidecar back afterwards.
    const std::string idx_snapshot = util::read_file(path + ".idx");
    {
      CandidateStore store(path, test_scope());
      auto upgraded = make_test_record(2, Stage::kTrained);
      store.put(upgraded);
      store.put(make_test_record(3, Stage::kChecked));
    }
    util::write_file_atomic(path + ".idx", idx_snapshot);
  }
  CandidateStore store(path, test_scope());
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.recovered_line_errors(), 0u);
  const auto got = store.lookup(make_test_record(2, Stage::kProbed).fingerprint);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->stage, Stage::kTrained);  // tail upgrade won
  // Only the tail's 2 frames were decoded during recovery, not all 4.
  EXPECT_EQ(store.decoded_frames(), 2u + 1u /* the lookup */);
}

TEST(BinaryStore, ForeignScopeFramesAreSkipped) {
  const std::string path = fresh_binary_path("foreign");
  {
    CandidateStore store(path, StoreScope{"other-env", "other-digest"});
    store.put(make_test_record(1, Stage::kProbed));
    store.put(make_test_record(2, Stage::kTrained));
  }
  std::filesystem::remove(path + ".idx");
  CandidateStore store(path, test_scope());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.recovered_line_errors(), 2u);
  EXPECT_TRUE(store.put(make_test_record(3, Stage::kChecked)));
  EXPECT_EQ(store.size(), 1u);
}

TEST(BinaryStore, CompactDropsSupersededAndIsIdempotent) {
  const std::string path = fresh_binary_path("compact");
  {
    // Stage history journaling: 3 + 2 + 1 = 6 frames for 3 fingerprints.
    CandidateStore store(path, test_scope());
    for (int stage = 0; stage <= 2; ++stage) {
      store.put(make_test_record(1, static_cast<Stage>(stage)));
    }
    for (int stage = 0; stage <= 1; ++stage) {
      store.put(make_test_record(2, static_cast<Stage>(stage)));
    }
    store.put(make_test_record(3, Stage::kChecked));
  }
  CandidateStore store(path, test_scope());
  const auto before = std::filesystem::file_size(path);
  EXPECT_EQ(store.compact(), 3u);  // 6 frames -> 3 records
  EXPECT_LT(std::filesystem::file_size(path), before);
  EXPECT_EQ(store.size(), 3u);
  const auto got = store.lookup(make_test_record(1, Stage::kTrained).fingerprint);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->stage, Stage::kTrained);

  // Idempotence: a second compact drops nothing and rewrites identical
  // bytes (journal and record set are already canonical).
  const std::string first_pass = util::read_file(path);
  EXPECT_EQ(store.compact(), 0u);
  EXPECT_EQ(util::read_file(path), first_pass);

  // The store stays writable and durable across compaction.
  EXPECT_TRUE(store.put(make_test_record(9, Stage::kProbed)));
  CandidateStore reopened(path, test_scope());
  EXPECT_EQ(reopened.size(), 4u);
}

TEST(ShardPlan, MixedFormatShardMergeMatchesAllJsonl) {
  // Three shard journals in mixed formats must merge byte-identically to
  // the same three journals all-JSONL — the supervisor may restart workers
  // under a different NADA_STORE_FORMAT mid-run.
  const std::vector<std::uint64_t> salts = {1, 2, 3, 4, 5, 6};
  auto fill = [&](CandidateStore& store, std::size_t begin, std::size_t end,
                  Stage stage) {
    for (std::size_t i = begin; i < end; ++i) {
      store.put(make_test_record(salts[i], stage));
    }
  };
  // JSONL originals.
  std::vector<std::string> jsonl_paths;
  for (int s = 0; s < 3; ++s) {
    jsonl_paths.push_back(fresh_path("mixfmt" + std::to_string(s)));
  }
  {
    CandidateStore s0(jsonl_paths[0], test_scope());
    fill(s0, 0, 4, Stage::kProbed);
    CandidateStore s1(jsonl_paths[1], test_scope());
    fill(s1, 2, 6, Stage::kTrained);  // overlaps s0 at stages above it
    CandidateStore s2(jsonl_paths[2], test_scope());
    fill(s2, 4, 6, Stage::kChecked);  // overlaps s1 at stages below it
  }
  // Mixed set: shard 1 converted to binary, others untouched.
  const std::string nsb_path = fresh_binary_path("mixfmt1");
  (void)convert_journal(jsonl_paths[1], nsb_path);
  const std::vector<std::string> mixed_paths = {jsonl_paths[0], nsb_path,
                                                jsonl_paths[2]};

  const std::string all_jsonl_dest = fresh_path("mixfmt_alljsonl");
  const std::string mixed_dest = fresh_path("mixfmt_mixed");
  const std::string binary_dest = fresh_binary_path("mixfmt_bin");
  std::size_t missing = 0;
  CandidateStore all_jsonl(all_jsonl_dest, test_scope());
  const std::size_t accepted_jsonl =
      merge_existing_shard_files(jsonl_paths, all_jsonl, &missing);
  EXPECT_EQ(missing, 0u);
  CandidateStore mixed(mixed_dest, test_scope());
  EXPECT_EQ(merge_existing_shard_files(mixed_paths, mixed, &missing),
            accepted_jsonl);
  CandidateStore binary(binary_dest, test_scope());
  EXPECT_EQ(merge_existing_shard_files(mixed_paths, binary, &missing),
            accepted_jsonl);

  // Byte-identical merged JSONL journals, and the binary destination holds
  // the same record set line for line.
  EXPECT_EQ(util::read_file(mixed_dest), util::read_file(all_jsonl_dest));
  const auto expect_records = all_jsonl.records();
  const auto binary_records = binary.records();
  ASSERT_EQ(binary_records.size(), expect_records.size());
  for (std::size_t i = 0; i < expect_records.size(); ++i) {
    EXPECT_EQ(CandidateStore::encode_line(binary_records[i], test_scope()),
              CandidateStore::encode_line(expect_records[i], test_scope()));
  }
}

TEST(CandidateStore, StoreFormatEnvDrivesExtensionAndDefaultPath) {
  {
    FormatEnvGuard guard(nullptr);
    EXPECT_EQ(store_format_from_env(), StoreFormat::kJsonl);
  }
  {
    FormatEnvGuard guard("binary");
    EXPECT_EQ(store_format_from_env(), StoreFormat::kBinary);
    ::setenv("NADA_STORE_DIR", "/tmp/nada_fmt_test", 1);
    const std::string path = default_store_path(test_scope());
    ::unsetenv("NADA_STORE_DIR");
    EXPECT_TRUE(path.ends_with(".nsb")) << path;
    EXPECT_EQ(format_for_path(path), StoreFormat::kBinary);
  }
  {
    FormatEnvGuard guard("jsonl");
    EXPECT_EQ(store_format_from_env(), StoreFormat::kJsonl);
  }
  {
    FormatEnvGuard guard("parquet");  // typo / unsupported: loud failure
    EXPECT_THROW((void)store_format_from_env(), std::runtime_error);
  }
  EXPECT_EQ(journal_extension(StoreFormat::kJsonl), std::string(".jsonl"));
  EXPECT_EQ(journal_extension(StoreFormat::kBinary), std::string(".nsb"));
  EXPECT_EQ(format_for_path("a/b/x.jsonl"), StoreFormat::kJsonl);
  EXPECT_EQ(format_for_path("a/b/x.nsb"), StoreFormat::kBinary);
}

TEST(BinaryStore, MillionRecordOpenIsIndexTimeAndLookupIsLazy) {
  // The acceptance pin for the whole backend: a journal at (scaled)
  // million-candidate size opens in under 100 ms through its sidecar and
  // serves a cache hit after deserializing exactly one frame. Full scale
  // runs in CI's store-format-smoke job via NADA_SCALE_GEN=1.
  const auto scale = util::ScaleConfig::from_env();
  const std::size_t n = scale.gen_count(1'000'000, 50'000);
  const std::string path = fresh_binary_path("million");

  // Synthesize the journal directly through the codec (put()'s
  // flush-per-append durability is the wrong tool for bulk fixture
  // generation).
  auto nth_fingerprint = [](std::size_t i) {
    Fingerprint fp;
    fp.hi = util::mix64(0x9e3779b97f4a7c15ULL + i);
    fp.lo = util::mix64(0x2545f4914f6cdd1dULL ^ i) | 1;
    return fp;
  };
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(kBinaryJournalMagic.data(),
              static_cast<std::streamsize>(kBinaryJournalMagic.size()));
    std::string buffer;
    for (std::size_t i = 0; i < n; ++i) {
      OutcomeRecord r;
      r.fingerprint = nth_fingerprint(i);
      r.stage = Stage::kProbed;
      r.id = "cand-" + std::to_string(i);
      r.source = "emit \"x\" = " + std::to_string(i) + ";\n";
      r.compiled = true;
      r.normalized = true;
      r.early_probed = true;
      r.early_rewards = {0.25, 0.5, 0.75};
      buffer += encode_record(r, test_scope());
      if (buffer.size() > (1u << 20)) {
        out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
        buffer.clear();
      }
    }
    out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    ASSERT_TRUE(out.good());
  }
  {
    // First open pays the one-time index build (O(records)), and persists
    // the sidecar for every open after it.
    CandidateStore store(path, test_scope());
    ASSERT_EQ(store.size(), n);
  }

  const auto t0 = std::chrono::steady_clock::now();
  CandidateStore store(path, test_scope());
  const auto open_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(store.size(), n);
  // The allocation guard: an indexed open materialized zero records.
  EXPECT_EQ(store.decoded_frames(), 0u);
  EXPECT_LT(open_ms, 100.0) << "indexed open of " << n << " records";

  // One cache hit = exactly one frame deserialized.
  const auto got = store.lookup(nth_fingerprint(n / 2));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->id, "cand-" + std::to_string(n / 2));
  EXPECT_EQ(store.decoded_frames(), 1u);
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".idx");
}

// ---- generator replay ------------------------------------------------------

TEST(GeneratorReplay, ResetReplaysTheExactStream) {
  gen::StateGenerator state_gen(gen::gpt4_profile(), gen::PromptStrategy{},
                                42);
  const auto first = state_gen.generate_batch(20);
  state_gen.reset();
  const auto replayed = state_gen.generate_batch(20);
  ASSERT_EQ(first.size(), replayed.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].id, replayed[i].id);
    EXPECT_EQ(first[i].source, replayed[i].source);
  }

  gen::ArchGenerator arch_gen(gen::gpt35_profile(), gen::PromptStrategy{},
                              43);
  const auto archs = arch_gen.generate_batch(20);
  arch_gen.reset();
  const auto archs2 = arch_gen.generate_batch(20);
  for (std::size_t i = 0; i < archs.size(); ++i) {
    EXPECT_EQ(archs[i].id, archs2[i].id);
    EXPECT_EQ(fingerprint_arch(archs[i].spec),
              fingerprint_arch(archs2[i].spec));
  }
}

// ---- pipeline integration --------------------------------------------------

core::PipelineConfig tiny_config() {
  core::PipelineConfig config;
  config.num_candidates = 30;
  config.early_epochs = 8;
  config.full_train_top = 3;
  config.seeds = 2;
  config.train.epochs = 24;
  config.train.test_interval = 8;
  config.train.max_eval_traces = 4;
  nn::ArchSpec arch = nn::ArchSpec::pensieve();
  arch.conv_filters = 8;
  arch.scalar_hidden = 8;
  arch.merge_hidden = 16;
  config.baseline_arch = arch;
  return config;
}

struct PipelineFixture {
  trace::Dataset dataset = trace::build_dataset(trace::Environment::kStarlink,
                                                0.2, 99);
  video::Video video = video::make_test_video(video::pensieve_ladder(), 7);
  util::ThreadPool pool{8};
};

void expect_same_ranked_result(const core::PipelineResult& a,
                               const core::PipelineResult& b) {
  EXPECT_EQ(a.best_index, b.best_index);
  EXPECT_DOUBLE_EQ(a.best_score, b.best_score);
  EXPECT_EQ(a.n_fully_trained, b.n_fully_trained);
  EXPECT_EQ(a.n_early_stopped, b.n_early_stopped);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].id, b.outcomes[i].id);
    EXPECT_EQ(a.outcomes[i].compiled, b.outcomes[i].compiled);
    EXPECT_EQ(a.outcomes[i].normalized, b.outcomes[i].normalized);
    EXPECT_EQ(a.outcomes[i].early_stopped, b.outcomes[i].early_stopped);
    EXPECT_EQ(a.outcomes[i].fully_trained, b.outcomes[i].fully_trained);
    EXPECT_DOUBLE_EQ(a.outcomes[i].test_score, b.outcomes[i].test_score);
  }
}

TEST(PipelineStore, SecondRunServesEverythingFromCache) {
  PipelineFixture fx;
  const std::string path = fresh_path("pipeline_cache");
  const core::PipelineConfig config = tiny_config();

  core::Pipeline first(fx.dataset, fx.video, config, 1234, &fx.pool);
  CandidateStore store1(path, first.store_scope());
  first.attach_store(&store1);
  gen::StateGenerator gen1(gen::gpt4_profile(), gen::PromptStrategy{}, 77);
  const auto run1 = first.search_states(gen1, config.baseline_arch);
  EXPECT_GT(run1.n_probes_run, 0u);
  EXPECT_GT(run1.n_full_trains_run, 0u);
  EXPECT_EQ(run1.cache_hits(), 0u);

  // A fresh process: new pipeline, the journal reopened from disk, the
  // same generator stream.
  core::Pipeline second(fx.dataset, fx.video, config, 1234, &fx.pool);
  CandidateStore store2(path, second.store_scope());
  second.attach_store(&store2);
  gen::StateGenerator gen2(gen::gpt4_profile(), gen::PromptStrategy{}, 77);
  const auto run2 = second.search_states(gen2, config.baseline_arch);

  // Zero duplicate work: no probes, no full-training runs.
  EXPECT_EQ(run2.n_probes_run, 0u);
  EXPECT_EQ(run2.n_full_trains_run, 0u);
  EXPECT_EQ(run2.n_precheck_cache_hits, run2.n_total);
  EXPECT_EQ(run2.n_full_cache_hits, run1.n_full_trains_run);
  expect_same_ranked_result(run1, run2);
}

TEST(PipelineStore, ResumesFromTruncatedCheckpointToSameResult) {
  PipelineFixture fx;
  const std::string path = fresh_path("pipeline_resume_full");
  const core::PipelineConfig config = tiny_config();

  core::Pipeline uninterrupted(fx.dataset, fx.video, config, 4321, &fx.pool);
  CandidateStore store1(path, uninterrupted.store_scope());
  uninterrupted.attach_store(&store1);
  gen::StateGenerator gen1(gen::gpt4_profile(), gen::PromptStrategy{}, 88);
  const auto full_run = uninterrupted.search_states(gen1,
                                                    config.baseline_arch);
  EXPECT_GT(full_run.n_full_trains_run, 0u);

  // Simulate a crash mid-way through the full-training stage: keep the
  // journal up to the first trained record, torn half-way through it.
  const std::string content = util::read_file(path);
  const std::size_t first_trained = content.find("\"stage\":2");
  ASSERT_NE(first_trained, std::string::npos);
  const std::size_t line_start = content.rfind('\n', first_trained) + 1;
  const std::size_t line_end = content.find('\n', first_trained);
  ASSERT_NE(line_end, std::string::npos);
  const std::string interrupted_journal =
      content.substr(0, line_start) +
      content.substr(line_start, (line_end - line_start) / 2);
  const std::string resume_path = fresh_path("pipeline_resume_torn");
  util::write_file_atomic(resume_path, interrupted_journal);

  core::Pipeline resumed(fx.dataset, fx.video, config, 4321, &fx.pool);
  CandidateStore store2(resume_path, resumed.store_scope());
  EXPECT_EQ(store2.recovered_line_errors(), 1u);
  resumed.attach_store(&store2);
  gen::StateGenerator gen2(gen::gpt4_profile(), gen::PromptStrategy{}, 88);
  const auto resumed_run = resumed.resume_states(gen2, config.baseline_arch);

  // Prechecks and probes come from the checkpoint; only full training
  // (whose records were lost in the crash) re-executes.
  EXPECT_EQ(resumed_run.n_probes_run, 0u);
  EXPECT_EQ(resumed_run.n_full_trains_run, full_run.n_full_trains_run);
  expect_same_ranked_result(full_run, resumed_run);
}

TEST(PipelineStore, ArchSearchCachesAcrossRuns) {
  PipelineFixture fx;
  const std::string path = fresh_path("pipeline_arch_cache");
  core::PipelineConfig config = tiny_config();
  config.num_candidates = 20;
  const auto state =
      dsl::StateProgram::compile(dsl::pensieve_state_source());

  core::Pipeline first(fx.dataset, fx.video, config, 555, &fx.pool);
  CandidateStore store1(path, first.store_scope());
  first.attach_store(&store1);
  gen::ArchGenerator gen1(gen::gpt35_profile(), gen::PromptStrategy{}, 99,
                          0.25);
  const auto run1 = first.search_archs(gen1, state);
  EXPECT_GT(run1.n_full_trains_run, 0u);

  core::Pipeline second(fx.dataset, fx.video, config, 555, &fx.pool);
  CandidateStore store2(path, second.store_scope());
  second.attach_store(&store2);
  gen::ArchGenerator gen2(gen::gpt35_profile(), gen::PromptStrategy{}, 99,
                          0.25);
  const auto run2 = second.resume_archs(gen2, state);
  EXPECT_EQ(run2.n_probes_run, 0u);
  EXPECT_EQ(run2.n_full_trains_run, 0u);
  expect_same_ranked_result(run1, run2);
}

TEST(PipelineStore, InBatchClonesShareOneProbe) {
  // Even without a store, candidates with identical content (same state
  // fingerprint, same arch) must probe exactly once: n_probes_run equals
  // the number of distinct fingerprints among normalized candidates.
  PipelineFixture fx;
  const core::PipelineConfig config = tiny_config();
  core::Pipeline pipeline(fx.dataset, fx.video, config, 2468, &fx.pool);
  gen::StateGenerator generator(gen::gpt4_profile(), gen::PromptStrategy{},
                                33);
  const auto result = pipeline.search_states(generator,
                                             config.baseline_arch);
  const Fingerprint arch_fp = fingerprint_arch(config.baseline_arch);
  std::set<std::string> distinct;
  for (const auto& outcome : result.outcomes) {
    if (outcome.compiled && outcome.normalized) {
      distinct.insert(
          combine(fingerprint_state_source(outcome.source), arch_fp).hex());
    }
  }
  EXPECT_EQ(result.n_probes_run, distinct.size());
}

TEST(PipelineStore, AttachRejectsMismatchedScope) {
  PipelineFixture fx;
  const core::PipelineConfig config = tiny_config();
  core::Pipeline pipeline(fx.dataset, fx.video, config, 1, &fx.pool);
  CandidateStore wrong(fresh_path("wrong_scope"),
                       StoreScope{"fcc", "not-this-pipeline"});
  EXPECT_THROW(pipeline.attach_store(&wrong), std::invalid_argument);

  // Different funnel budgets => different scope digests.
  core::PipelineConfig other = config;
  other.early_epochs += 4;
  core::Pipeline other_pipeline(fx.dataset, fx.video, other, 1, &fx.pool);
  EXPECT_NE(pipeline.store_scope().config_digest,
            other_pipeline.store_scope().config_digest);
  EXPECT_EQ(pipeline.store_scope().env, "Starlink");

  // Same environment but different traces (another dataset build seed)
  // must not alias either: results are only reusable on the same data.
  const trace::Dataset other_data =
      trace::build_dataset(trace::Environment::kStarlink, 0.2, 100);
  core::Pipeline other_env(other_data, fx.video, config, 1, &fx.pool);
  EXPECT_NE(pipeline.store_scope().config_digest,
            other_env.store_scope().config_digest);
}

TEST(PipelineStore, ResumeWithoutStoreThrows) {
  PipelineFixture fx;
  core::Pipeline pipeline(fx.dataset, fx.video, tiny_config(), 1, &fx.pool);
  gen::StateGenerator generator(gen::gpt4_profile(), gen::PromptStrategy{},
                                7);
  EXPECT_THROW((void)pipeline.resume_states(generator,
                                            tiny_config().baseline_arch),
               std::logic_error);
}

}  // namespace
}  // namespace nada::store

// Tests for the persistent candidate store: canonical serialization and
// fingerprint stability, journal round-trip and crash recovery, shard
// planning, and cache/resume behaviour of the integrated pipeline.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "dsl/canonical.h"
#include "dsl/parser.h"
#include "store/candidate_store.h"
#include "store/fingerprint.h"
#include "store/shard.h"
#include "util/fs.h"

namespace nada::store {
namespace {

// A fresh journal path per test, cleaned of any previous run's leftovers.
std::string fresh_path(const std::string& name) {
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) /
       ("nada_store_test_" + name + ".jsonl"))
          .string();
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".tmp");
  return path;
}

StoreScope test_scope() { return StoreScope{"fcc", "test-digest"}; }

OutcomeRecord make_test_record(std::uint64_t salt, Stage stage) {
  OutcomeRecord record;
  record.fingerprint = fingerprint_text("record-" + std::to_string(salt));
  record.stage = stage;
  record.id = "cand-" + std::to_string(salt);
  record.source = "emit \"x\" = " + std::to_string(salt) + ";\n";
  record.compiled = true;
  record.normalized = true;
  if (stage >= Stage::kProbed) {
    record.early_probed = true;
    record.early_rewards = {0.1 * static_cast<double>(salt), 0.5, -0.25};
  }
  if (stage >= Stage::kTrained) {
    record.fully_trained = true;
    record.test_score = 1.5 + static_cast<double>(salt);
    record.emulation_score = 0.75;
    record.curve_epochs = {8, 16, 24};
    record.median_curve = {0.2, 0.4, 0.6};
  }
  return record;
}

// ---- canonical serialization ----------------------------------------------

TEST(Canonical, FormattingAndNamingNormalized) {
  const std::string a =
      "let smooth = ema(throughput_mbps, 0.5);\n"
      "emit \"tput\" = smooth / 8.0;\n";
  const std::string b =
      "# an explanatory comment, as LLM output carries\n"
      "let s2=ema( throughput_mbps ,0.50 ) ;\n"
      "emit \"tput\"=( s2 / 8.00 );";
  const std::string ca = dsl::canonical_source(dsl::parse(a));
  const std::string cb = dsl::canonical_source(dsl::parse(b));
  EXPECT_EQ(ca, cb);
  EXPECT_NE(ca.find("v0"), std::string::npos);   // let binding renamed
  EXPECT_NE(ca.find("tput"), std::string::npos); // row name kept
}

TEST(Canonical, DistinctProgramsStayDistinct) {
  const auto a = dsl::canonical_source(
      dsl::parse("emit \"x\" = buffer_size_s / 10.0;"));
  const auto b = dsl::canonical_source(
      dsl::parse("emit \"x\" = buffer_size_s / 7.0;"));
  EXPECT_NE(a, b);
}

TEST(Canonical, FreeVariablesCannotCaptureRenamedBindings) {
  // "v0" as a free (input) reference must not collide with the canonical
  // name of a let binding — these programs are semantically different.
  const std::string bound = "let x = 1.0;\nemit \"r\" = x;";
  const std::string free_v0 = "let x = 1.0;\nemit \"r\" = v0;";
  EXPECT_NE(dsl::canonical_source(dsl::parse(bound)),
            dsl::canonical_source(dsl::parse(free_v0)));
  EXPECT_NE(fingerprint_state_source(bound), fingerprint_state_source(free_v0));
}

TEST(Canonical, ShadowedBindingsRenameConsistently) {
  const std::string a =
      "let t = throughput_mbps;\nlet t = t * 2.0;\nemit \"x\" = t;";
  const std::string b =
      "let u = throughput_mbps;\nlet w = u * 2.0;\nemit \"x\" = w;";
  EXPECT_EQ(dsl::canonical_source(dsl::parse(a)),
            dsl::canonical_source(dsl::parse(b)));
}

// ---- fingerprints ----------------------------------------------------------

TEST(Fingerprint, StableAcrossReformattedSources) {
  const std::string a = dsl::pensieve_state_source();
  // Reformat: inject comments and blank lines, keep the AST identical.
  std::string b = "# reformatted\n\n";
  for (char c : a) {
    b += c;
    if (c == ';') b += "   ";
  }
  EXPECT_EQ(fingerprint_state_source(a), fingerprint_state_source(b));
  EXPECT_NE(fingerprint_state_source(a),
            fingerprint_state_source("emit \"x\" = buffer_size_s;"));
}

TEST(Fingerprint, UnparsableSourcesHashByRawText) {
  const std::string broken = "let ) = 3;";
  EXPECT_EQ(fingerprint_state_source(broken),
            fingerprint_state_source("  " + broken + "\n"));
  EXPECT_NE(fingerprint_state_source(broken),
            fingerprint_state_source("let ( = 3;"));
}

TEST(Fingerprint, ArchEncodingCoversEveryField) {
  const nn::ArchSpec base = nn::ArchSpec::pensieve();
  EXPECT_EQ(fingerprint_arch(base), fingerprint_arch(nn::ArchSpec::pensieve()));
  nn::ArchSpec changed = base;
  changed.activation = nn::Activation::kLeakyRelu;
  EXPECT_NE(fingerprint_arch(base), fingerprint_arch(changed));
  changed = base;
  changed.shared_trunk = true;
  EXPECT_NE(fingerprint_arch(base), fingerprint_arch(changed));
  changed = base;
  changed.merge_layers += 1;
  EXPECT_NE(fingerprint_arch(base), fingerprint_arch(changed));
}

TEST(Fingerprint, CombineIsOrderSensitive) {
  const Fingerprint a = fingerprint_text("a");
  const Fingerprint b = fingerprint_text("b");
  EXPECT_NE(combine(a, b), combine(b, a));
  EXPECT_EQ(combine(a, b), combine(a, b));
}

TEST(Fingerprint, HexRoundTrip) {
  const Fingerprint fp = fingerprint_text("round trip");
  const auto parsed = Fingerprint::from_hex(fp.hex());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, fp);
  EXPECT_FALSE(Fingerprint::from_hex("zz").has_value());
  EXPECT_FALSE(
      Fingerprint::from_hex(std::string(32, 'g')).has_value());
}

// ---- candidate store -------------------------------------------------------

TEST(CandidateStore, RoundTripAllStages) {
  const std::string path = fresh_path("roundtrip");
  const auto checked = make_test_record(1, Stage::kChecked);
  auto probed = make_test_record(2, Stage::kProbed);
  probed.compile_error = "blew up \"late\"\nwith a newline";
  auto trained = make_test_record(3, Stage::kTrained);
  trained.arch = nn::ArchSpec::pensieve();
  trained.arch->temporal = nn::TemporalUnit::kLstm;
  trained.arch->shared_trunk = true;
  {
    CandidateStore store(path, test_scope());
    EXPECT_TRUE(store.put(checked));
    EXPECT_TRUE(store.put(probed));
    EXPECT_TRUE(store.put(trained));
  }
  CandidateStore reopened(path, test_scope());
  EXPECT_EQ(reopened.size(), 3u);
  EXPECT_EQ(reopened.recovered_line_errors(), 0u);

  const auto got = reopened.lookup(trained.fingerprint);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->stage, Stage::kTrained);
  EXPECT_EQ(got->id, trained.id);
  EXPECT_EQ(got->source, trained.source);
  ASSERT_TRUE(got->arch.has_value());
  EXPECT_EQ(got->arch->temporal, nn::TemporalUnit::kLstm);
  EXPECT_TRUE(got->arch->shared_trunk);
  EXPECT_TRUE(got->fully_trained);
  EXPECT_DOUBLE_EQ(got->test_score, trained.test_score);
  EXPECT_EQ(got->curve_epochs, trained.curve_epochs);
  EXPECT_EQ(got->median_curve, trained.median_curve);

  const auto got_probed = reopened.lookup(probed.fingerprint);
  ASSERT_TRUE(got_probed.has_value());
  EXPECT_EQ(got_probed->compile_error, probed.compile_error);
  EXPECT_EQ(got_probed->early_rewards, probed.early_rewards);
  EXPECT_FALSE(got_probed->arch.has_value());
}

TEST(CandidateStore, PutIsMonotonePerFingerprint) {
  const std::string path = fresh_path("monotone");
  CandidateStore store(path, test_scope());
  auto record = make_test_record(7, Stage::kChecked);
  EXPECT_TRUE(store.put(record));
  EXPECT_FALSE(store.put(record));  // same stage: not re-journaled
  record.stage = Stage::kProbed;
  record.early_probed = true;
  record.early_rewards = {1.0};
  EXPECT_TRUE(store.put(record));
  record.stage = Stage::kChecked;  // regression attempt
  EXPECT_FALSE(store.put(record));
  EXPECT_EQ(store.size(), 1u);
  const auto got = store.lookup(record.fingerprint);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->stage, Stage::kProbed);

  // Exactly two journal lines: one per accepted put.
  const std::string content = util::read_file(path);
  std::size_t lines = 0;
  for (char c : content) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 2u);
}

TEST(CandidateStore, RecoversFromTornFinalLine) {
  const std::string path = fresh_path("torn");
  {
    CandidateStore store(path, test_scope());
    store.put(make_test_record(1, Stage::kProbed));
    store.put(make_test_record(2, Stage::kTrained));
  }
  // Simulate a crash mid-append: keep the first record plus a prefix of the
  // second line.
  const std::string content = util::read_file(path);
  const std::size_t first_newline = content.find('\n');
  ASSERT_NE(first_newline, std::string::npos);
  const std::string torn =
      content.substr(0, first_newline + 1) +
      content.substr(first_newline + 1, (content.size() - first_newline) / 2);
  util::write_file_atomic(path, torn);

  CandidateStore recovered(path, test_scope());
  EXPECT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered.recovered_line_errors(), 1u);
  EXPECT_TRUE(
      recovered.lookup(make_test_record(1, Stage::kProbed).fingerprint)
          .has_value());
  // The journal stays usable after recovery.
  EXPECT_TRUE(recovered.put(make_test_record(3, Stage::kChecked)));
  CandidateStore reopened(path, test_scope());
  EXPECT_EQ(reopened.size(), 2u);
}

TEST(CandidateStore, CompactRewritesUpgradesAndTornTail) {
  const std::string path = fresh_path("compact");
  {
    // A journal full of superseded stages: each record journaled at every
    // stage it passed through (3 + 2 + 1 = 6 lines for 3 fingerprints).
    CandidateStore store(path, test_scope());
    store.put(make_test_record(1, Stage::kChecked));
    store.put(make_test_record(1, Stage::kProbed));
    store.put(make_test_record(1, Stage::kTrained));
    store.put(make_test_record(2, Stage::kChecked));
    store.put(make_test_record(2, Stage::kProbed));
    store.put(make_test_record(3, Stage::kChecked));
  }
  // Plus a crash's torn tail.
  {
    const std::string content = util::read_file(path);
    util::write_file_atomic(path,
                            content + "{\"fp\": \"deadbeef\", \"trunc");
  }

  CandidateStore store(path, test_scope());
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.recovered_line_errors(), 1u);
  const std::size_t dropped = store.compact();
  // 7 meaningful lines on disk -> 3 latest-stage records.
  EXPECT_EQ(dropped, 4u);
  EXPECT_EQ(store.recovered_line_errors(), 0u);

  // The rewritten journal holds exactly one line per fingerprint, at the
  // furthest stage, and stays fully usable.
  {
    const std::string content = util::read_file(path);
    std::size_t lines = 0;
    for (char c : content) lines += c == '\n' ? 1 : 0;
    EXPECT_EQ(lines, 3u);
  }
  const auto r1 = store.lookup(make_test_record(1, Stage::kChecked).fingerprint);
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->stage, Stage::kTrained);
  EXPECT_TRUE(store.put(make_test_record(4, Stage::kChecked)));

  CandidateStore reopened(path, test_scope());
  EXPECT_EQ(reopened.size(), 4u);
  EXPECT_EQ(reopened.recovered_line_errors(), 0u);
  const auto r1_again =
      reopened.lookup(make_test_record(1, Stage::kChecked).fingerprint);
  ASSERT_TRUE(r1_again.has_value());
  EXPECT_EQ(r1_again->stage, Stage::kTrained);
  EXPECT_EQ(r1_again->test_score, make_test_record(1, Stage::kTrained).test_score);
  // Idempotent: a second compaction drops nothing.
  EXPECT_EQ(reopened.compact(), 0u);
  EXPECT_EQ(reopened.size(), 4u);
}

TEST(CandidateStore, ForeignScopeLinesAreSkipped) {
  const std::string path = fresh_path("scope");
  {
    CandidateStore store(path, test_scope());
    store.put(make_test_record(1, Stage::kChecked));
  }
  CandidateStore other(path, StoreScope{"fcc", "other-digest"});
  EXPECT_EQ(other.size(), 0u);
  EXPECT_EQ(other.recovered_line_errors(), 1u);
}

TEST(CandidateStore, MergeUnionsAndKeepsFurthestStage) {
  const std::string path_a = fresh_path("merge_a");
  const std::string path_b = fresh_path("merge_b");
  CandidateStore a(path_a, test_scope());
  CandidateStore b(path_b, test_scope());
  a.put(make_test_record(1, Stage::kChecked));
  a.put(make_test_record(2, Stage::kProbed));
  b.put(make_test_record(2, Stage::kTrained));  // same candidate, further
  b.put(make_test_record(3, Stage::kChecked));
  EXPECT_EQ(a.merge_from(b), 2u);
  EXPECT_EQ(a.size(), 3u);
  const auto got = a.lookup(make_test_record(2, Stage::kProbed).fingerprint);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->stage, Stage::kTrained);

  CandidateStore mismatched(fresh_path("merge_c"),
                            StoreScope{"fcc", "other"});
  EXPECT_THROW((void)a.merge_from(mismatched), std::invalid_argument);
}

TEST(CandidateStore, DefaultPathHonorsEnvDir) {
  ::setenv("NADA_STORE_DIR", "/tmp/nada-test-stores", 1);
  const std::string path = default_store_path(test_scope());
  EXPECT_EQ(path.rfind("/tmp/nada-test-stores/", 0), 0u);
  EXPECT_NE(path.find("fcc-"), std::string::npos);
  ::unsetenv("NADA_STORE_DIR");
}

// ---- shard planning --------------------------------------------------------

TEST(ShardPlan, RangesPartitionTheWholeSpace) {
  for (std::size_t n : {1u, 2u, 3u, 7u, 16u}) {
    const ShardPlan plan(n);
    EXPECT_EQ(plan.range(0).lo, 0u);
    EXPECT_EQ(plan.range(n - 1).hi, ~std::uint64_t{0});
    for (std::size_t s = 0; s + 1 < n; ++s) {
      EXPECT_EQ(plan.range(s).hi + 1, plan.range(s + 1).lo)
          << "gap between shards " << s << " and " << s + 1;
    }
  }
  EXPECT_THROW(ShardPlan(0), std::invalid_argument);
}

TEST(ShardPlan, ShardOfAgreesWithRanges) {
  const ShardPlan plan(5);
  for (int i = 0; i < 500; ++i) {
    const Fingerprint fp = fingerprint_text("candidate-" + std::to_string(i));
    const std::size_t shard = plan.shard_of(fp);
    ASSERT_LT(shard, 5u);
    const auto range = plan.range(shard);
    EXPECT_GE(fp.hi, range.lo);
    EXPECT_LE(fp.hi, range.hi);
  }
}

TEST(ShardPlan, PartitionCoversEveryCandidateOnce) {
  std::vector<Fingerprint> fps;
  for (int i = 0; i < 200; ++i) {
    fps.push_back(fingerprint_text("p-" + std::to_string(i)));
  }
  const ShardPlan plan(4);
  const auto shards = plan.partition(fps);
  ASSERT_EQ(shards.size(), 4u);
  std::vector<bool> seen(fps.size(), false);
  for (std::size_t s = 0; s < shards.size(); ++s) {
    for (std::size_t idx : shards[s]) {
      EXPECT_EQ(plan.shard_of(fps[idx]), s);
      EXPECT_FALSE(seen[idx]);
      seen[idx] = true;
    }
  }
  for (bool b : seen) EXPECT_TRUE(b);
}

TEST(ShardPlan, MergeShardFilesUnionsWorkerStores) {
  const ShardPlan plan(3);
  std::vector<std::string> paths;
  for (std::size_t s = 0; s < 3; ++s) {
    paths.push_back(fresh_path("shard" + std::to_string(s)));
  }
  // Three workers journal only the candidates their range owns.
  std::size_t total = 0;
  {
    std::vector<std::unique_ptr<CandidateStore>> workers;
    for (const auto& path : paths) {
      workers.push_back(std::make_unique<CandidateStore>(path, test_scope()));
    }
    for (std::uint64_t salt = 0; salt < 60; ++salt) {
      auto record = make_test_record(salt, Stage::kProbed);
      workers[plan.shard_of(record.fingerprint)]->put(record);
      ++total;
    }
  }
  const std::string merged_path = fresh_path("shard_merged");
  CandidateStore merged(merged_path, test_scope());
  EXPECT_EQ(merge_shard_files(paths, merged), total);
  EXPECT_EQ(merged.size(), total);
  for (std::uint64_t salt = 0; salt < 60; ++salt) {
    EXPECT_TRUE(
        merged.lookup(make_test_record(salt, Stage::kProbed).fingerprint)
            .has_value());
  }

  // A missing shard journal is a worker that never reported: loud failure,
  // not a silently empty merge.
  const std::vector<std::string> with_missing = {paths[0],
                                                 fresh_path("shard_gone")};
  EXPECT_THROW((void)merge_shard_files(with_missing, merged),
               std::runtime_error);
}

TEST(ShardPlan, MergeShardFilesFiltersMixedDomainJournals) {
  // One shard set serving two domains at once: every shard journal holds
  // ABR-scope and CC-scope lines interleaved (workers for both searches
  // sharing a store directory and shard files). A merge must accept
  // exactly the destination's scope and skip the other domain's records —
  // never alias them together.
  const StoreScope abr_scope{"4G", "abr-digest"};
  const StoreScope cc_scope{"cc-4G", "cc-digest"};
  const std::vector<std::uint64_t> salts = {0, 1, 2, 3, 4,
                                            10, 11, 12, 13, 14};
  std::vector<std::string> paths;
  for (std::size_t s = 0; s < 2; ++s) {
    const std::string path = fresh_path("mixed_shard" + std::to_string(s));
    std::string content;
    for (std::size_t k = 5 * s; k < 5 * s + 5; ++k) {
      content += CandidateStore::encode_line(
                     make_test_record(salts[k], Stage::kProbed), abr_scope) +
                 "\n";
      content += CandidateStore::encode_line(
                     make_test_record(100 + salts[k], Stage::kTrained),
                     cc_scope) +
                 "\n";
    }
    util::write_file_atomic(path, content);
    paths.push_back(path);
  }

  CandidateStore abr_merged(fresh_path("mixed_abr"), abr_scope);
  EXPECT_EQ(merge_shard_files(paths, abr_merged), 10u);
  EXPECT_EQ(abr_merged.size(), 10u);
  for (std::uint64_t salt : salts) {
    const auto record = abr_merged.lookup(
        make_test_record(salt, Stage::kProbed).fingerprint);
    ASSERT_TRUE(record.has_value());
    EXPECT_EQ(record->stage, Stage::kProbed);
    // The CC records with shifted salts never leaked in.
    EXPECT_FALSE(abr_merged
                     .lookup(make_test_record(100 + salt, Stage::kTrained)
                                 .fingerprint)
                     .has_value());
  }

  CandidateStore cc_merged(fresh_path("mixed_cc"), cc_scope);
  EXPECT_EQ(merge_shard_files(paths, cc_merged), 10u);
  EXPECT_EQ(cc_merged.size(), 10u);
  for (std::uint64_t salt : salts) {
    const auto record = cc_merged.lookup(
        make_test_record(100 + salt, Stage::kTrained).fingerprint);
    ASSERT_TRUE(record.has_value());
    EXPECT_EQ(record->stage, Stage::kTrained);
    EXPECT_TRUE(record->fully_trained);
  }
}

// ---- generator replay ------------------------------------------------------

TEST(GeneratorReplay, ResetReplaysTheExactStream) {
  gen::StateGenerator state_gen(gen::gpt4_profile(), gen::PromptStrategy{},
                                42);
  const auto first = state_gen.generate_batch(20);
  state_gen.reset();
  const auto replayed = state_gen.generate_batch(20);
  ASSERT_EQ(first.size(), replayed.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].id, replayed[i].id);
    EXPECT_EQ(first[i].source, replayed[i].source);
  }

  gen::ArchGenerator arch_gen(gen::gpt35_profile(), gen::PromptStrategy{},
                              43);
  const auto archs = arch_gen.generate_batch(20);
  arch_gen.reset();
  const auto archs2 = arch_gen.generate_batch(20);
  for (std::size_t i = 0; i < archs.size(); ++i) {
    EXPECT_EQ(archs[i].id, archs2[i].id);
    EXPECT_EQ(fingerprint_arch(archs[i].spec),
              fingerprint_arch(archs2[i].spec));
  }
}

// ---- pipeline integration --------------------------------------------------

core::PipelineConfig tiny_config() {
  core::PipelineConfig config;
  config.num_candidates = 30;
  config.early_epochs = 8;
  config.full_train_top = 3;
  config.seeds = 2;
  config.train.epochs = 24;
  config.train.test_interval = 8;
  config.train.max_eval_traces = 4;
  nn::ArchSpec arch = nn::ArchSpec::pensieve();
  arch.conv_filters = 8;
  arch.scalar_hidden = 8;
  arch.merge_hidden = 16;
  config.baseline_arch = arch;
  return config;
}

struct PipelineFixture {
  trace::Dataset dataset = trace::build_dataset(trace::Environment::kStarlink,
                                                0.2, 99);
  video::Video video = video::make_test_video(video::pensieve_ladder(), 7);
  util::ThreadPool pool{8};
};

void expect_same_ranked_result(const core::PipelineResult& a,
                               const core::PipelineResult& b) {
  EXPECT_EQ(a.best_index, b.best_index);
  EXPECT_DOUBLE_EQ(a.best_score, b.best_score);
  EXPECT_EQ(a.n_fully_trained, b.n_fully_trained);
  EXPECT_EQ(a.n_early_stopped, b.n_early_stopped);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].id, b.outcomes[i].id);
    EXPECT_EQ(a.outcomes[i].compiled, b.outcomes[i].compiled);
    EXPECT_EQ(a.outcomes[i].normalized, b.outcomes[i].normalized);
    EXPECT_EQ(a.outcomes[i].early_stopped, b.outcomes[i].early_stopped);
    EXPECT_EQ(a.outcomes[i].fully_trained, b.outcomes[i].fully_trained);
    EXPECT_DOUBLE_EQ(a.outcomes[i].test_score, b.outcomes[i].test_score);
  }
}

TEST(PipelineStore, SecondRunServesEverythingFromCache) {
  PipelineFixture fx;
  const std::string path = fresh_path("pipeline_cache");
  const core::PipelineConfig config = tiny_config();

  core::Pipeline first(fx.dataset, fx.video, config, 1234, &fx.pool);
  CandidateStore store1(path, first.store_scope());
  first.attach_store(&store1);
  gen::StateGenerator gen1(gen::gpt4_profile(), gen::PromptStrategy{}, 77);
  const auto run1 = first.search_states(gen1, config.baseline_arch);
  EXPECT_GT(run1.n_probes_run, 0u);
  EXPECT_GT(run1.n_full_trains_run, 0u);
  EXPECT_EQ(run1.cache_hits(), 0u);

  // A fresh process: new pipeline, the journal reopened from disk, the
  // same generator stream.
  core::Pipeline second(fx.dataset, fx.video, config, 1234, &fx.pool);
  CandidateStore store2(path, second.store_scope());
  second.attach_store(&store2);
  gen::StateGenerator gen2(gen::gpt4_profile(), gen::PromptStrategy{}, 77);
  const auto run2 = second.search_states(gen2, config.baseline_arch);

  // Zero duplicate work: no probes, no full-training runs.
  EXPECT_EQ(run2.n_probes_run, 0u);
  EXPECT_EQ(run2.n_full_trains_run, 0u);
  EXPECT_EQ(run2.n_precheck_cache_hits, run2.n_total);
  EXPECT_EQ(run2.n_full_cache_hits, run1.n_full_trains_run);
  expect_same_ranked_result(run1, run2);
}

TEST(PipelineStore, ResumesFromTruncatedCheckpointToSameResult) {
  PipelineFixture fx;
  const std::string path = fresh_path("pipeline_resume_full");
  const core::PipelineConfig config = tiny_config();

  core::Pipeline uninterrupted(fx.dataset, fx.video, config, 4321, &fx.pool);
  CandidateStore store1(path, uninterrupted.store_scope());
  uninterrupted.attach_store(&store1);
  gen::StateGenerator gen1(gen::gpt4_profile(), gen::PromptStrategy{}, 88);
  const auto full_run = uninterrupted.search_states(gen1,
                                                    config.baseline_arch);
  EXPECT_GT(full_run.n_full_trains_run, 0u);

  // Simulate a crash mid-way through the full-training stage: keep the
  // journal up to the first trained record, torn half-way through it.
  const std::string content = util::read_file(path);
  const std::size_t first_trained = content.find("\"stage\":2");
  ASSERT_NE(first_trained, std::string::npos);
  const std::size_t line_start = content.rfind('\n', first_trained) + 1;
  const std::size_t line_end = content.find('\n', first_trained);
  ASSERT_NE(line_end, std::string::npos);
  const std::string interrupted_journal =
      content.substr(0, line_start) +
      content.substr(line_start, (line_end - line_start) / 2);
  const std::string resume_path = fresh_path("pipeline_resume_torn");
  util::write_file_atomic(resume_path, interrupted_journal);

  core::Pipeline resumed(fx.dataset, fx.video, config, 4321, &fx.pool);
  CandidateStore store2(resume_path, resumed.store_scope());
  EXPECT_EQ(store2.recovered_line_errors(), 1u);
  resumed.attach_store(&store2);
  gen::StateGenerator gen2(gen::gpt4_profile(), gen::PromptStrategy{}, 88);
  const auto resumed_run = resumed.resume_states(gen2, config.baseline_arch);

  // Prechecks and probes come from the checkpoint; only full training
  // (whose records were lost in the crash) re-executes.
  EXPECT_EQ(resumed_run.n_probes_run, 0u);
  EXPECT_EQ(resumed_run.n_full_trains_run, full_run.n_full_trains_run);
  expect_same_ranked_result(full_run, resumed_run);
}

TEST(PipelineStore, ArchSearchCachesAcrossRuns) {
  PipelineFixture fx;
  const std::string path = fresh_path("pipeline_arch_cache");
  core::PipelineConfig config = tiny_config();
  config.num_candidates = 20;
  const auto state =
      dsl::StateProgram::compile(dsl::pensieve_state_source());

  core::Pipeline first(fx.dataset, fx.video, config, 555, &fx.pool);
  CandidateStore store1(path, first.store_scope());
  first.attach_store(&store1);
  gen::ArchGenerator gen1(gen::gpt35_profile(), gen::PromptStrategy{}, 99,
                          0.25);
  const auto run1 = first.search_archs(gen1, state);
  EXPECT_GT(run1.n_full_trains_run, 0u);

  core::Pipeline second(fx.dataset, fx.video, config, 555, &fx.pool);
  CandidateStore store2(path, second.store_scope());
  second.attach_store(&store2);
  gen::ArchGenerator gen2(gen::gpt35_profile(), gen::PromptStrategy{}, 99,
                          0.25);
  const auto run2 = second.resume_archs(gen2, state);
  EXPECT_EQ(run2.n_probes_run, 0u);
  EXPECT_EQ(run2.n_full_trains_run, 0u);
  expect_same_ranked_result(run1, run2);
}

TEST(PipelineStore, InBatchClonesShareOneProbe) {
  // Even without a store, candidates with identical content (same state
  // fingerprint, same arch) must probe exactly once: n_probes_run equals
  // the number of distinct fingerprints among normalized candidates.
  PipelineFixture fx;
  const core::PipelineConfig config = tiny_config();
  core::Pipeline pipeline(fx.dataset, fx.video, config, 2468, &fx.pool);
  gen::StateGenerator generator(gen::gpt4_profile(), gen::PromptStrategy{},
                                33);
  const auto result = pipeline.search_states(generator,
                                             config.baseline_arch);
  const Fingerprint arch_fp = fingerprint_arch(config.baseline_arch);
  std::set<std::string> distinct;
  for (const auto& outcome : result.outcomes) {
    if (outcome.compiled && outcome.normalized) {
      distinct.insert(
          combine(fingerprint_state_source(outcome.source), arch_fp).hex());
    }
  }
  EXPECT_EQ(result.n_probes_run, distinct.size());
}

TEST(PipelineStore, AttachRejectsMismatchedScope) {
  PipelineFixture fx;
  const core::PipelineConfig config = tiny_config();
  core::Pipeline pipeline(fx.dataset, fx.video, config, 1, &fx.pool);
  CandidateStore wrong(fresh_path("wrong_scope"),
                       StoreScope{"fcc", "not-this-pipeline"});
  EXPECT_THROW(pipeline.attach_store(&wrong), std::invalid_argument);

  // Different funnel budgets => different scope digests.
  core::PipelineConfig other = config;
  other.early_epochs += 4;
  core::Pipeline other_pipeline(fx.dataset, fx.video, other, 1, &fx.pool);
  EXPECT_NE(pipeline.store_scope().config_digest,
            other_pipeline.store_scope().config_digest);
  EXPECT_EQ(pipeline.store_scope().env, "Starlink");

  // Same environment but different traces (another dataset build seed)
  // must not alias either: results are only reusable on the same data.
  const trace::Dataset other_data =
      trace::build_dataset(trace::Environment::kStarlink, 0.2, 100);
  core::Pipeline other_env(other_data, fx.video, config, 1, &fx.pool);
  EXPECT_NE(pipeline.store_scope().config_digest,
            other_env.store_scope().config_digest);
}

TEST(PipelineStore, ResumeWithoutStoreThrows) {
  PipelineFixture fx;
  core::Pipeline pipeline(fx.dataset, fx.video, tiny_config(), 1, &fx.pool);
  gen::StateGenerator generator(gen::gpt4_profile(), gen::PromptStrategy{},
                                7);
  EXPECT_THROW((void)pipeline.resume_states(generator,
                                            tiny_config().baseline_arch),
               std::logic_error);
}

}  // namespace
}  // namespace nada::store

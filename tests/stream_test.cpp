// Batch-vs-streaming equivalence for the rolling-window funnel:
//
//   * same seeds => identical rankings (the fully-trained cohort, scores,
//     curves, and the best candidate) whether the stream is materialized
//     up front (window_size == 0) or pulled through rolling windows —
//     for ABR and CC domains, with and without a store, serial and
//     sharded,
//   * same store journal record SET: only the line order may differ
//     (windows interleave check/probe records), so journals compare as
//     sorted line sets, byte-identical per line,
//   * constant-memory mechanics: window events fire with the right
//     sizes/positions, the per-candidate stages cycle per window, and the
//     running selection never exceeds full_train_top,
//   * streaming resume: a run interrupted after the per-candidate stages
//     finishes on the journal alone (zero re-probes).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <optional>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "cc/cc_domain.h"
#include "env/abr_domain.h"
#include "filter/earlystop.h"
#include "gen/state_gen.h"
#include "search/candidate.h"
#include "search/observer.h"
#include "search/search_job.h"
#include "search/shard_runner.h"
#include "trace/generator.h"
#include "util/fs.h"
#include "video/video.h"

namespace nada::search {
namespace {

std::string fresh_path(const std::string& tag) {
  const std::string path =
      ::testing::TempDir() + "nada_stream_" + tag + ".jsonl";
  std::remove(path.c_str());
  return path;
}

std::string fresh_dir(const std::string& tag) {
  return ::testing::TempDir() + "nada_stream_" + tag;
}

SearchConfig tiny_config(std::size_t window_size) {
  SearchConfig config;
  config.num_candidates = 30;
  config.early_epochs = 8;
  config.full_train_top = 3;
  config.seeds = 2;
  config.train.epochs = 24;
  config.train.test_interval = 8;
  config.train.max_eval_traces = 4;
  config.window_size = window_size;
  nn::ArchSpec arch = nn::ArchSpec::pensieve();
  arch.conv_filters = 8;
  arch.scalar_hidden = 8;
  arch.merge_hidden = 16;
  config.baseline_arch = arch;
  return config;
}

struct Fixture {
  trace::Dataset dataset =
      trace::build_dataset(trace::Environment::kStarlink, 0.2, 99);
  video::Video video = video::make_test_video(video::pensieve_ladder(), 7);
  env::AbrDomain domain{dataset, video};
  util::ThreadPool pool{8};
};

std::vector<std::string> sorted_lines(const std::string& path) {
  std::vector<std::string> lines;
  std::istringstream in(util::read_file(path));
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) lines.push_back(line);
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

/// Runs one state search over `space` with the given window mode;
/// journals into `store_path` when non-empty.
SearchResult run_state_search(const env::TaskDomain& domain,
                              const SearchConfig& config, std::uint64_t seed,
                              std::uint64_t gen_seed,
                              const std::string& store_path,
                              util::ThreadPool* pool,
                              const gen::StateSpace& space,
                              Observer* observer = nullptr) {
  gen::StateGenerator generator(space, gen::gpt4_profile(),
                                gen::PromptStrategy{}, gen_seed);
  StateCandidateSource source(generator);
  std::optional<store::CandidateStore> store;
  JobOptions options;
  options.pool = pool;
  if (!store_path.empty()) {
    store.emplace(store_path, store_scope(domain, config, seed));
    options.store = &*store;
  }
  SearchJob job(domain, config, seed, source,
                FixedDesign{nullptr, &config.baseline_arch}, options);
  job.add_observer(observer);
  return job.run_to_completion();
}

/// The trained cohort as a comparable value: stream position, id, score,
/// and the full probe curve (bitwise).
using TrainedRow = std::tuple<std::size_t, std::string, double,
                              std::vector<double>>;
std::vector<TrainedRow> trained_rows(const SearchResult& result) {
  std::vector<TrainedRow> rows;
  for (const auto& outcome : result.outcomes) {
    if (!outcome.fully_trained) continue;
    rows.emplace_back(outcome.stream_index, outcome.id, outcome.test_score,
                      outcome.early_rewards);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// The equivalence a streaming run owes a batch run: identical funnel
/// counters, baseline, best candidate, and trained cohort. (n_probes_run
/// and cache-hit counters are deliberately NOT compared: without a store,
/// streaming re-probes cross-window duplicates that batch dedups in
/// memory — identical results, more executions.)
void expect_equivalent(const SearchResult& batch, const SearchResult& stream) {
  EXPECT_EQ(batch.n_total, stream.n_total);
  EXPECT_EQ(batch.n_compiled, stream.n_compiled);
  EXPECT_EQ(batch.n_normalized, stream.n_normalized);
  EXPECT_EQ(batch.n_early_stopped, stream.n_early_stopped);
  EXPECT_EQ(batch.n_fully_trained, stream.n_fully_trained);
  EXPECT_DOUBLE_EQ(batch.original_score, stream.original_score);
  ASSERT_EQ(batch.has_best(), stream.has_best());
  if (batch.has_best()) {
    EXPECT_DOUBLE_EQ(batch.best_score, stream.best_score);
    EXPECT_EQ(batch.outcomes[batch.best_index].id,
              stream.outcomes[stream.best_index].id);
    EXPECT_EQ(batch.outcomes[batch.best_index].stream_index,
              stream.outcomes[stream.best_index].stream_index);
  }
  EXPECT_EQ(trained_rows(batch), trained_rows(stream));
}

// ---- ABR: store-backed and store-less equivalence ---------------------------

TEST(StreamingEquivalence, AbrSearchMatchesBatchAndJournalsSameRecords) {
  Fixture fx;
  const std::string batch_path = fresh_path("abr_batch");
  const std::string stream_path = fresh_path("abr_stream");

  const auto batch =
      run_state_search(fx.domain, tiny_config(0), 1234, 77, batch_path,
                       &fx.pool, gen::abr_state_space());
  const auto stream =
      run_state_search(fx.domain, tiny_config(7), 1234, 77, stream_path,
                       &fx.pool, gen::abr_state_space());

  expect_equivalent(batch, stream);
  // Streaming keeps only the retained candidates in memory/result...
  EXPECT_EQ(batch.outcomes.size(), batch.n_total);
  EXPECT_LE(stream.outcomes.size(), tiny_config(7).full_train_top);
  // ...but journals the identical record set: per line byte-identical,
  // only the order differs (windows interleave checked/probed records).
  EXPECT_EQ(sorted_lines(batch_path), sorted_lines(stream_path));
  EXPECT_NE(sorted_lines(batch_path), std::vector<std::string>{});

  // Warm streaming rerun: everything from the journal, nothing executed.
  const auto warm =
      run_state_search(fx.domain, tiny_config(7), 1234, 77, stream_path,
                       &fx.pool, gen::abr_state_space());
  EXPECT_EQ(warm.n_probes_run, 0u);
  EXPECT_EQ(warm.n_full_trains_run, 0u);
  expect_equivalent(batch, warm);
}

TEST(StreamingEquivalence, MatchesBatchWithoutStore) {
  Fixture fx;
  const auto batch = run_state_search(fx.domain, tiny_config(0), 42, 5, "",
                                      &fx.pool, gen::abr_state_space());
  const auto stream = run_state_search(fx.domain, tiny_config(7), 42, 5, "",
                                       &fx.pool, gen::abr_state_space());
  expect_equivalent(batch, stream);
}

TEST(StreamingEquivalence, WindowEdgeSizes) {
  Fixture fx;
  SearchConfig batch_config = tiny_config(0);
  batch_config.num_candidates = 12;
  batch_config.full_train_top = 2;
  const auto batch = run_state_search(fx.domain, batch_config, 9, 3, "",
                                      &fx.pool, gen::abr_state_space());
  // window == 1 (maximal folding), window not dividing the stream, and
  // window larger than the whole stream (one rolling window).
  for (const std::size_t window : {std::size_t{1}, std::size_t{5},
                                   std::size_t{64}}) {
    SearchConfig config = batch_config;
    config.window_size = window;
    const auto stream = run_state_search(fx.domain, config, 9, 3, "",
                                         &fx.pool, gen::abr_state_space());
    expect_equivalent(batch, stream);
  }
}

// ---- CC domain through the streaming funnel ---------------------------------

TEST(StreamingEquivalence, CcSearchMatchesBatchAndJournalsSameRecords) {
  const trace::Dataset dataset =
      trace::build_dataset(trace::Environment::k4G, 0.2, 1234);
  cc::CcConfig cc_config;
  cc_config.steps_per_episode = 30;
  cc_config.init_rate_mbps = 2.0;
  const cc::CcDomain domain(dataset, cc_config);
  util::ThreadPool pool(8);

  SearchConfig config = tiny_config(0);
  config.num_candidates = 16;
  config.full_train_top = 2;
  const std::string batch_path = fresh_path("cc_batch");
  const std::string stream_path = fresh_path("cc_stream");
  const auto batch = run_state_search(domain, config, 11, 8, batch_path,
                                      &pool, gen::cc_state_space());
  config.window_size = 5;
  const auto stream = run_state_search(domain, config, 11, 8, stream_path,
                                       &pool, gen::cc_state_space());
  expect_equivalent(batch, stream);
  EXPECT_EQ(sorted_lines(batch_path), sorted_lines(stream_path));
}

// ---- early-stop model through the fold --------------------------------------

TEST(StreamingEquivalence, EarlyStopModelVerdictsMatchBatch) {
  // Streaming applies the model's keep() verdicts window by window (with
  // the baseline trained lazily at the first fold); batch applies them in
  // one pass after the baseline stage. Same model, same seeds => the
  // verdicts, counters, and rankings must agree.
  Fixture fx;
  filter::EarlyStopConfig es_config;
  filter::EarlyStopModel model(filter::EarlyStopMethod::kHeuristicMax,
                               es_config, 1);
  // A tiny corpus whose top design pins the tuned threshold near -0.5 (in
  // baseline-normalized reward units): weak probes stop, decent ones pass.
  std::vector<filter::DesignRecord> corpus;
  for (int i = 0; i < 10; ++i) {
    filter::DesignRecord record;
    record.id = std::to_string(i);
    record.final_score = i == 0 ? 100.0 : static_cast<double>(i);
    record.early_rewards = {-2.0, i == 0 ? -0.5 : -1.5};
    corpus.push_back(record);
  }
  model.fit(corpus);

  auto run = [&](std::size_t window) {
    SearchConfig config = tiny_config(window);
    gen::StateGenerator generator(gen::gpt4_profile(), gen::PromptStrategy{},
                                  77);
    StateCandidateSource source(generator);
    JobOptions options;
    options.pool = &fx.pool;
    options.early_stop_model = &model;
    SearchJob job(fx.domain, config, 1234, source,
                  FixedDesign{nullptr, &config.baseline_arch}, options);
    return job.run_to_completion();
  };
  const auto batch = run(0);
  const auto stream = run(7);
  expect_equivalent(batch, stream);
  // The model actually discriminated (otherwise this test pins nothing).
  EXPECT_GT(batch.n_early_stopped, 0u);
}

// ---- sharded streaming workers ----------------------------------------------

TEST(StreamingEquivalence, ShardedStreamingWorkersMatchBatchSingleProcess) {
  Fixture fx;
  const SearchConfig batch_config = tiny_config(0);
  const std::string single_path = fresh_path("shard_single");
  const auto single =
      run_state_search(fx.domain, batch_config, 1234, 77, single_path,
                       &fx.pool, gen::abr_state_space());

  // Three workers, each streaming its ShardPlan range in windows of 5,
  // then the driver's merge+rank (also streaming).
  SearchConfig stream_config = tiny_config(5);
  ShardRunnerConfig shard_config;
  shard_config.num_shards = 3;
  shard_config.store_dir = fresh_dir("shards");
  ShardRunner runner(fx.domain, stream_config, 1234, shard_config, &fx.pool);
  std::size_t in_shard_total = 0;
  for (std::size_t shard = 0; shard < 3; ++shard) {
    std::remove(runner.shard_store_path(shard).c_str());
    gen::StateGenerator worker_gen(gen::gpt4_profile(), gen::PromptStrategy{},
                                   77);
    StateCandidateSource worker_source(worker_gen);
    const auto worker_result = runner.run_worker(
        shard, worker_source,
        FixedDesign{nullptr, &stream_config.baseline_arch});
    in_shard_total += worker_result.n_total - worker_result.n_out_of_shard;
    EXPECT_EQ(worker_result.n_fully_trained, 0u);
  }
  EXPECT_EQ(in_shard_total, stream_config.num_candidates);

  std::remove(runner.merged_store_path().c_str());
  gen::StateGenerator driver_gen(gen::gpt4_profile(), gen::PromptStrategy{},
                                 77);
  StateCandidateSource driver_source(driver_gen);
  const auto merged = runner.merge_and_rank(
      driver_source, FixedDesign{nullptr, &stream_config.baseline_arch});
  EXPECT_EQ(merged.n_probes_run, 0u);
  expect_equivalent(single, merged);
  EXPECT_EQ(sorted_lines(single_path),
            sorted_lines(runner.merged_store_path()));
}

// ---- mixed-kind streams -----------------------------------------------------

TEST(StreamingEquivalence, MixedKindStreamMatchesBatch) {
  Fixture fx;
  SearchConfig config = tiny_config(0);
  config.num_candidates = 8;
  config.full_train_top = 2;
  const auto fixed_state =
      dsl::StateProgram::compile(dsl::pensieve_state_source());

  auto make_source = [] {
    gen::StateGenerator state_gen(gen::gpt4_profile(), gen::PromptStrategy{},
                                  21);
    gen::ArchGenerator arch_gen(gen::gpt4_profile(), gen::PromptStrategy{},
                                22, 0.25);
    std::vector<CandidateSpec> specs;
    StateCandidateSource states(state_gen);
    ArchCandidateSource archs(arch_gen);
    for (auto& spec : states.generate(4)) specs.push_back(std::move(spec));
    for (auto& spec : archs.generate(4)) specs.push_back(std::move(spec));
    return VectorCandidateSource(std::move(specs));
  };

  JobOptions options;
  options.pool = &fx.pool;
  auto batch_source = make_source();
  SearchJob batch_job(fx.domain, config, 31, batch_source,
                      FixedDesign{&fixed_state, &config.baseline_arch},
                      options);
  const auto batch = batch_job.run_to_completion();

  config.window_size = 3;
  auto stream_source = make_source();
  SearchJob stream_job(fx.domain, config, 31, stream_source,
                       FixedDesign{&fixed_state, &config.baseline_arch},
                       options);
  const auto stream = stream_job.run_to_completion();
  expect_equivalent(batch, stream);
  // Retained outcomes keep their kind-specific payloads.
  for (const auto& outcome : stream.outcomes) {
    EXPECT_EQ(outcome.arch.has_value(), outcome.stream_index >= 4);
  }
}

// ---- window lifecycle -------------------------------------------------------

TEST(StreamingWindows, StagesCycleAndWindowEventsCoverTheStream) {
  Fixture fx;
  const SearchConfig config = tiny_config(7);  // 30 candidates: 7,7,7,7,2
  gen::StateGenerator generator(gen::gpt4_profile(), gen::PromptStrategy{},
                                77);
  StateCandidateSource source(generator);
  JobOptions options;
  options.pool = &fx.pool;
  SearchJob job(fx.domain, config, 1234, source,
                FixedDesign{nullptr, &config.baseline_arch}, options);
  RecordingObserver recording;
  job.add_observer(&recording);

  // The per-candidate stages cycle once per window.
  std::vector<StageKind> stages;
  while (!job.done()) {
    stages.push_back(job.next_stage_kind());
    job.next_stage();
  }
  std::vector<StageKind> expected;
  for (int w = 0; w < 5; ++w) {
    expected.insert(expected.end(), {StageKind::kGenerate,
                                     StageKind::kPrecheck, StageKind::kProbe});
  }
  expected.insert(expected.end(), {StageKind::kBaseline, StageKind::kSelect,
                                   StageKind::kFullTrain, StageKind::kRank});
  EXPECT_EQ(stages, expected);

  // Window events: 5 windows, first positions 0,7,14,21,28, sizes
  // 7,7,7,7,2, running selection never exceeding full_train_top.
  ASSERT_EQ(recording.window_starts.size(), 5u);
  ASSERT_EQ(recording.windows.size(), 5u);
  std::size_t covered = 0;
  for (std::size_t w = 0; w < 5; ++w) {
    EXPECT_EQ(recording.window_starts[w].first, w);
    EXPECT_EQ(recording.window_starts[w].second, covered);
    EXPECT_EQ(recording.windows[w].index, w);
    EXPECT_EQ(recording.windows[w].first, covered);
    EXPECT_EQ(recording.windows[w].size, w < 4 ? 7u : 2u);
    EXPECT_LE(recording.windows[w].retained, config.full_train_top);
    EXPECT_GE(recording.windows[w].seconds, 0.0);
    covered += recording.windows[w].size;
  }
  EXPECT_EQ(covered, config.num_candidates);

  // Candidate coverage survives the windowing: every candidate entered,
  // early-stop events carry stream positions, trained events fired.
  EXPECT_EQ(recording.count(CandidateEventType::kEntered),
            job.result().n_total);
  EXPECT_EQ(recording.count(CandidateEventType::kEarlyStopped),
            job.result().n_early_stopped);
  EXPECT_EQ(recording.count(CandidateEventType::kTrained),
            job.result().n_full_trains_run);

  // Batch jobs never fire window events.
  const SearchConfig batch_config = tiny_config(0);
  gen::StateGenerator batch_gen(gen::gpt4_profile(), gen::PromptStrategy{},
                                77);
  StateCandidateSource batch_source(batch_gen);
  SearchJob batch_job(fx.domain, batch_config, 1234, batch_source,
                      FixedDesign{nullptr, &batch_config.baseline_arch},
                      options);
  RecordingObserver batch_recording;
  batch_job.add_observer(&batch_recording);
  (void)batch_job.run_to_completion();
  EXPECT_TRUE(batch_recording.windows.empty());
  EXPECT_TRUE(batch_recording.window_starts.empty());
}

TEST(StreamingWindows, ShortSourceExhaustsCleanly) {
  Fixture fx;
  SearchConfig config = tiny_config(4);
  config.num_candidates = 30;
  config.full_train_top = 2;
  // Only 10 candidates exist: windows of 4, 4, 2, then straight to the
  // cohort stages.
  gen::StateGenerator generator(gen::gpt4_profile(), gen::PromptStrategy{},
                                13);
  StateCandidateSource full(generator);
  VectorCandidateSource source(full.generate(10));
  JobOptions options;
  options.pool = &fx.pool;
  SearchJob job(fx.domain, config, 2, source,
                FixedDesign{nullptr, &config.baseline_arch}, options);
  RecordingObserver recording;
  job.add_observer(&recording);
  const auto result = job.run_to_completion();
  EXPECT_EQ(result.n_total, 10u);
  ASSERT_EQ(recording.windows.size(), 3u);
  EXPECT_EQ(recording.windows[2].size, 2u);
}

// ---- streaming resume -------------------------------------------------------

TEST(StreamingResume, InterruptedStreamingRunFinishesFromTheJournal) {
  Fixture fx;
  const SearchConfig config = tiny_config(6);
  const std::string path = fresh_path("resume");
  store::CandidateStore store(path, store_scope(fx.domain, config, 4321));
  JobOptions options;
  options.store = &store;
  options.pool = &fx.pool;

  // "Interrupted" run: every window's pre-checks and probes journal, then
  // the process dies before the cohort stages.
  gen::StateGenerator gen1(gen::gpt4_profile(), gen::PromptStrategy{}, 88);
  StateCandidateSource source1(gen1);
  SearchJob partial(fx.domain, config, 4321, source1,
                    FixedDesign{nullptr, &config.baseline_arch}, options);
  const auto& partial_result = partial.run_until(StageKind::kBaseline);
  EXPECT_GT(partial_result.n_probes_run, 0u);

  // resume(): rewinds the (spent) source and serves every journaled stage.
  SearchJob resumed(fx.domain, config, 4321, source1,
                    FixedDesign{nullptr, &config.baseline_arch}, options);
  const auto warm = resumed.resume();
  EXPECT_EQ(warm.n_probes_run, 0u);

  // The finished streaming run equals a batch run of the same seeds.
  SearchConfig batch_config = config;
  batch_config.window_size = 0;
  const std::string batch_path = fresh_path("resume_batch");
  const auto batch =
      run_state_search(fx.domain, batch_config, 4321, 88, batch_path,
                       &fx.pool, gen::abr_state_space());
  expect_equivalent(batch, warm);
  EXPECT_EQ(sorted_lines(batch_path), sorted_lines(path));
}

}  // namespace
}  // namespace nada::search

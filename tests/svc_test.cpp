// The elastic search supervisor's contracts (src/svc/, docs/SERVICE.md):
//
//   * split_range / split_midpoint: the two halves partition the parent
//     exactly — no gap, no overlap, degenerate ranges handled, and the
//     union of the fingerprints they contain reproduces the parent's set
//     bit-for-bit,
//   * LeaseLog: grant/complete/revoke replay into the correct durable
//     state, torn tails are skipped on read and neutralized on append,
//     hex range bounds round-trip at full 64-bit precision,
//   * Supervisor (scripted /bin/sh workers): drains the queue, re-grants a
//     crashed lease with the same journal, fails fast on the usage exit
//     code, gives up after max_restarts, kills + splits + reassigns a
//     stale straggler, and resumes unfinished leases from a prior log,
//   * shard_worker exit codes: 0 ok / 1 runtime / 2 usage / 42 injected
//     crash — pinned, because the supervisor's restart policy branches on
//     them,
//   * THE invariant: a supervised run of the real shard_worker binary with
//     two injected mid-append crashes and one stale straggler (killed,
//     split, reassigned) produces byte-identical rankings and journal
//     record sets to an uninterrupted single-process run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "search/search_job.h"
#include "search/shard_runner.h"
#include "store/candidate_store.h"
#include "store/fingerprint.h"
#include "store/shard.h"
#include "svc/lease_log.h"
#include "svc/process.h"
#include "svc/supervisor.h"
#include "tools/cli_common.h"
#include "util/fs.h"
#include "util/json.h"

namespace nada::svc {
namespace {

std::string fresh_dir(const std::string& tag) {
  const std::string path = ::testing::TempDir() + "nada_svc_" + tag;
  std::error_code ec;
  std::filesystem::remove_all(path, ec);
  util::ensure_directories(path);
  return path;
}

// ---- sub-range splitting ----------------------------------------------------

TEST(SplitRange, PartitionsParentExactly) {
  const store::ShardPlan::Range parent{100, 200};
  const auto [left, right] = store::split_range(parent, 150);
  EXPECT_EQ(left.lo, 100u);
  EXPECT_EQ(left.hi, 149u);
  EXPECT_EQ(right.lo, 150u);
  EXPECT_EQ(right.hi, 200u);
  // No gap, no overlap, widths add up.
  EXPECT_EQ(left.hi + 1, right.lo);
  EXPECT_EQ(left.width() + right.width(), parent.width());

  // Boundary at hi: the right half degenerates to a single hi value.
  const auto [body, last] = store::split_range(parent, 200);
  EXPECT_EQ(body.hi, 199u);
  EXPECT_EQ(last.lo, 200u);
  EXPECT_EQ(last.hi, 200u);
  EXPECT_FALSE(last.splittable());
  EXPECT_EQ(last.width(), 1u);

  // A two-value range splits into two degenerate singles.
  const auto [a, b] = store::split_midpoint({7, 8});
  EXPECT_EQ(a, (store::ShardPlan::Range{7, 7}));
  EXPECT_EQ(b, (store::ShardPlan::Range{8, 8}));
  EXPECT_FALSE(a.splittable());
  EXPECT_FALSE(b.splittable());
}

TEST(SplitRange, RejectsDegenerateBoundaries) {
  const store::ShardPlan::Range parent{100, 200};
  // boundary == lo would make the left half empty.
  EXPECT_THROW((void)store::split_range(parent, 100), std::invalid_argument);
  EXPECT_THROW((void)store::split_range(parent, 99), std::invalid_argument);
  EXPECT_THROW((void)store::split_range(parent, 201), std::invalid_argument);
  // A single-value range is not splittable at all.
  EXPECT_FALSE((store::ShardPlan::Range{5, 5}).splittable());
  EXPECT_THROW((void)store::split_midpoint({5, 5}), std::invalid_argument);
}

TEST(SplitRange, ExtremesOfTheFullSpace) {
  // The full 64-bit space (width() wraps to 0 by design) still splits
  // cleanly at the midpoint, and recursive splits stay exact.
  const store::ShardPlan::Range full{0, ~std::uint64_t{0}};
  const auto [lo_half, hi_half] = store::split_midpoint(full);
  EXPECT_EQ(lo_half.lo, 0u);
  EXPECT_EQ(lo_half.hi + 1, hi_half.lo);
  EXPECT_EQ(hi_half.hi, ~std::uint64_t{0});
  const auto [q1, q2] = store::split_midpoint(lo_half);
  const auto [q3, q4] = store::split_midpoint(hi_half);
  EXPECT_EQ(q1.hi + 1, q2.lo);
  EXPECT_EQ(q2.hi + 1, q3.lo);
  EXPECT_EQ(q3.hi + 1, q4.lo);
}

TEST(SplitRange, UnionReproducesParentMembershipBitForBit) {
  // Real content fingerprints, not synthetic hi values: membership after a
  // split must agree with the parent for every candidate — exactly one
  // half claims each in-parent fingerprint, neither claims an outsider.
  std::vector<store::Fingerprint> fps;
  fps.reserve(4096);
  for (int i = 0; i < 4096; ++i) {
    fps.push_back(store::fingerprint_text("candidate-" + std::to_string(i)));
  }
  const store::ShardPlan plan(3);
  for (std::size_t shard = 0; shard < plan.num_shards(); ++shard) {
    const auto parent = plan.range(shard);
    const auto [left, right] = store::split_midpoint(parent);
    std::size_t in_parent = 0;
    for (const auto& fp : fps) {
      const bool in_left = left.contains(fp);
      const bool in_right = right.contains(fp);
      EXPECT_FALSE(in_left && in_right);
      EXPECT_EQ(parent.contains(fp), in_left || in_right);
      if (parent.contains(fp)) ++in_parent;
      // Membership agrees with the plan's own assignment.
      EXPECT_EQ(parent.contains(fp), plan.shard_of(fp) == shard);
    }
    EXPECT_GT(in_parent, 0u);  // the sample actually exercises this range
  }
}

// ---- LeaseLog ---------------------------------------------------------------

TEST(LeaseLog, HexRoundTripsFullPrecision) {
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{0xdeadbeef},
        std::uint64_t{1} << 63, ~std::uint64_t{0}}) {
    EXPECT_EQ(parse_hex_u64(hex_u64(v)), v);
    EXPECT_EQ(hex_u64(v).size(), 16u);
  }
  EXPECT_EQ(hex_u64(~std::uint64_t{0}), "ffffffffffffffff");
  EXPECT_THROW((void)parse_hex_u64(""), std::runtime_error);
  EXPECT_THROW((void)parse_hex_u64("xyz"), std::runtime_error);
  EXPECT_THROW((void)parse_hex_u64("10000000000000000"), std::runtime_error);
}

Lease test_lease(std::uint64_t id, std::uint64_t lo, std::uint64_t hi,
                 const std::string& dir, std::size_t attempt = 0,
                 std::uint64_t parent = 0) {
  Lease lease;
  lease.id = id;
  lease.range = {lo, hi};
  lease.journal_path = dir + "/lease-" + std::to_string(id) + ".jsonl";
  lease.status_path = lease.journal_path + ".status.json";
  lease.attempt = attempt;
  lease.parent = parent;
  return lease;
}

TEST(LeaseLog, RecoverReplaysDurableState) {
  const std::string dir = fresh_dir("leaselog");
  const std::string path = dir + "/log.jsonl";
  {
    LeaseLog log(path);
    log.grant(test_lease(1, 0, 99, dir));
    log.grant(test_lease(2, 100, 199, dir));
    log.grant(test_lease(3, 200, 299, dir));
    log.complete(1);
    log.revoke(2, "crash: exit 1");
    log.note("restart", 2, {{"attempt", "1"}});
    log.grant(test_lease(2, 100, 199, dir, /*attempt=*/1));
    log.revoke(3, "stale");
  }
  const auto state = LeaseLog::recover(path);
  EXPECT_EQ(state.skipped_lines, 0u);
  EXPECT_EQ(state.max_lease_id, 3u);
  EXPECT_EQ(state.completed, (std::set<std::uint64_t>{1}));
  ASSERT_EQ(state.completed_journals.size(), 1u);
  EXPECT_EQ(state.completed_journals[0], dir + "/lease-1.jsonl");
  // Lease 2 was re-granted after its revoke: outstanding, at attempt 1.
  ASSERT_EQ(state.outstanding.size(), 1u);
  EXPECT_EQ(state.outstanding.at(2).attempt, 1u);
  EXPECT_EQ(state.outstanding.at(2).range, (store::ShardPlan::Range{100, 199}));
  // Lease 3's revoke was the last word: revoked, needing a re-grant.
  ASSERT_EQ(state.revoked.size(), 1u);
  EXPECT_EQ(state.revoked.at(3).range, (store::ShardPlan::Range{200, 299}));
}

TEST(LeaseLog, TornTailIsSkippedOnReadAndNeutralizedOnAppend) {
  const std::string dir = fresh_dir("leaselog_torn");
  const std::string path = dir + "/log.jsonl";
  {
    LeaseLog log(path);
    log.grant(test_lease(1, 0, 99, dir));
  }
  {
    // A supervisor killed mid-append: half a record, no newline.
    std::ofstream torn(path, std::ios::app);
    torn << R"({"event":"complete","lease)";
  }
  const auto state = LeaseLog::recover(path);
  EXPECT_EQ(state.skipped_lines, 1u);
  EXPECT_EQ(state.outstanding.size(), 1u);  // the torn complete never landed
  {
    // Reopening newline-terminates the fragment; the next event must land
    // on its own line and be recovered.
    LeaseLog log(path);
    log.complete(1);
  }
  const auto after = LeaseLog::recover(path);
  EXPECT_EQ(after.skipped_lines, 1u);
  EXPECT_TRUE(after.outstanding.empty());
  EXPECT_EQ(after.completed, (std::set<std::uint64_t>{1}));
}

// ---- Supervisor with scripted workers ---------------------------------------

/// Command builder running an inline /bin/sh script (fast, no search).
CommandBuilder sh_command(const std::string& script) {
  return [script](const Lease&) {
    return std::vector<std::string>{"/bin/sh", "-c", script};
  };
}

SupervisorConfig fast_config(const std::string& dir) {
  SupervisorConfig config;
  config.dir = dir;
  config.prefix = "t-";
  config.poll_interval_seconds = 0.01;
  config.heartbeat_timeout_seconds = 0.0;  // staleness off unless a test opts in
  config.cluster_status_interval_seconds = 0.05;
  return config;
}

TEST(Supervisor, DrainsTheQueueAndLogsEveryLease) {
  const std::string dir = fresh_dir("sup_happy");
  SupervisorConfig config = fast_config(dir);
  config.num_workers = 2;
  config.initial_leases = 4;
  Supervisor supervisor(config, sh_command("exit 0"));
  const auto report = supervisor.run();
  EXPECT_TRUE(report.success) << report.error;
  EXPECT_EQ(report.leases_planned, 4u);
  EXPECT_EQ(report.leases_completed, 4u);
  EXPECT_EQ(report.spawned, 4u);
  EXPECT_EQ(report.crash_restarts, 0u);
  EXPECT_EQ(report.stale_kills, 0u);
  EXPECT_EQ(report.journal_paths.size(), 4u);

  // The lease log carries the full history and the planned ranges tile the
  // fingerprint space in lease order.
  const auto state = LeaseLog::recover(report.event_log_path);
  EXPECT_EQ(state.completed.size(), 4u);
  EXPECT_TRUE(state.outstanding.empty());
  std::uint64_t next_lo = 0;
  const auto events = LeaseLog::read_events(report.event_log_path);
  for (const auto& event : events) {
    if (event.get("event").as_string() != "grant") continue;
    EXPECT_EQ(parse_hex_u64(event.get("lo").as_string()), next_lo);
    next_lo = parse_hex_u64(event.get("hi").as_string()) + 1;
  }
  EXPECT_EQ(next_lo, 0u);  // last hi was 2^64 - 1, +1 wrapped

  // Final cluster status reflects the drained queue.
  const auto status =
      util::JsonValue::parse(util::read_file(report.cluster_status_path));
  EXPECT_EQ(status.get("supervisor").get("pending_leases").as_number(), 0.0);
  EXPECT_EQ(status.get("supervisor").get("leases_completed").as_number(), 4.0);
}

TEST(Supervisor, CrashedLeaseIsRegrantedWithTheSameJournal) {
  const std::string dir = fresh_dir("sup_crash");
  SupervisorConfig config = fast_config(dir);
  config.num_workers = 2;
  config.initial_leases = 2;
  config.max_restarts = 3;
  // Every worker crashes once: first attempt plants a marker and dies with
  // a restartable code; the retry sees the marker and succeeds.
  Supervisor supervisor(
      config, [&dir](const Lease& lease) {
        const std::string marker =
            dir + "/crashed-" + std::to_string(lease.id);
        return std::vector<std::string>{
            "/bin/sh", "-c",
            "if [ -f " + marker + " ]; then exit 0; else touch " + marker +
                "; exit 1; fi"};
      });
  const auto report = supervisor.run();
  EXPECT_TRUE(report.success) << report.error;
  EXPECT_EQ(report.leases_completed, 2u);
  EXPECT_EQ(report.crash_restarts, 2u);
  EXPECT_EQ(report.spawned, 4u);  // 2 first attempts + 2 retries
  // Restart reuses the journal: no new paths appear.
  EXPECT_EQ(report.journal_paths.size(), 2u);
  // The log shows revoke -> restart -> grant(attempt 1) per lease.
  std::size_t restarts = 0;
  for (const auto& event : LeaseLog::read_events(report.event_log_path)) {
    if (event.get("event").as_string() == "restart") ++restarts;
  }
  EXPECT_EQ(restarts, 2u);
}

TEST(Supervisor, FailsFastOnTheUsageExitCode) {
  const std::string dir = fresh_dir("sup_failfast");
  SupervisorConfig config = fast_config(dir);
  config.num_workers = 1;
  config.initial_leases = 2;
  config.max_restarts = 5;
  Supervisor supervisor(config, sh_command("exit 2"));
  const auto report = supervisor.run();
  EXPECT_FALSE(report.success);
  EXPECT_NE(report.error.find("failed fast"), std::string::npos);
  // No restart was burned on a config bug.
  EXPECT_EQ(report.crash_restarts, 0u);
  EXPECT_EQ(report.spawned, 1u);
}

TEST(Supervisor, GivesUpAfterMaxRestarts) {
  const std::string dir = fresh_dir("sup_maxrestarts");
  SupervisorConfig config = fast_config(dir);
  config.num_workers = 1;
  config.initial_leases = 1;
  config.max_restarts = 2;
  Supervisor supervisor(config, sh_command("exit 1"));
  const auto report = supervisor.run();
  EXPECT_FALSE(report.success);
  EXPECT_NE(report.error.find("max_restarts"), std::string::npos);
  EXPECT_EQ(report.spawned, 3u);  // initial + 2 allowed restarts
  EXPECT_EQ(report.crash_restarts, 2u);
}

TEST(Supervisor, StaleStragglerIsKilledSplitAndReassigned) {
  const std::string dir = fresh_dir("sup_stale");
  SupervisorConfig config = fast_config(dir);
  config.num_workers = 2;
  config.initial_leases = 1;
  config.heartbeat_timeout_seconds = 0.3;
  // The planned lease never heartbeats (no status file, judged from spawn
  // time) and never finishes; the split children exit immediately.
  Supervisor supervisor(config, [](const Lease& lease) {
    return std::vector<std::string>{
        "/bin/sh", "-c", lease.parent == 0 ? "sleep 60" : "exit 0"};
  });
  const auto report = supervisor.run();
  EXPECT_TRUE(report.success) << report.error;
  EXPECT_EQ(report.stale_kills, 1u);
  EXPECT_EQ(report.splits, 1u);
  EXPECT_EQ(report.leases_completed, 2u);  // the two children
  EXPECT_EQ(report.journal_paths.size(), 3u);  // parent partial + children

  // The children exactly partition the parent's range.
  const auto state = LeaseLog::recover(report.event_log_path);
  EXPECT_EQ(state.completed.size(), 2u);
  std::size_t reassigns = 0;
  store::ShardPlan::Range parent_range{1, 0}, left{1, 0}, right{1, 0};
  for (const auto& event : LeaseLog::read_events(report.event_log_path)) {
    const std::string kind = event.get("event").as_string();
    if (kind == "reassign") ++reassigns;
    if (kind != "grant") continue;
    const store::ShardPlan::Range range{
        parse_hex_u64(event.get("lo").as_string()),
        parse_hex_u64(event.get("hi").as_string())};
    if (event.get("parent").as_number() == 0.0) parent_range = range;
    else if (left.lo > left.hi) left = range;
    else right = range;
  }
  EXPECT_EQ(reassigns, 2u);
  EXPECT_EQ(left.lo, parent_range.lo);
  EXPECT_EQ(left.hi + 1, right.lo);
  EXPECT_EQ(right.hi, parent_range.hi);
}

TEST(Supervisor, ResumeRegrantsUnfinishedLeasesFromAPriorLog) {
  const std::string dir = fresh_dir("sup_resume");
  SupervisorConfig config = fast_config(dir);
  config.num_workers = 2;
  // A previous supervisor's log: lease 1 finished, lease 2 was running
  // when it died, lease 3 was revoked and never re-granted.
  {
    LeaseLog log(config.event_log_path.empty()
                     ? dir + "/" + config.prefix + "supervisor.jsonl"
                     : config.event_log_path);
    log.grant(test_lease(1, 0, 99, dir));
    log.grant(test_lease(2, 100, 199, dir));
    log.grant(test_lease(3, 200, 299, dir));
    log.complete(1);
    log.revoke(3, "crash: exit 1");
  }
  std::vector<std::uint64_t> granted;
  Supervisor supervisor(config, [&granted](const Lease& lease) {
    granted.push_back(lease.id);
    return std::vector<std::string>{"/bin/sh", "-c", "exit 0"};
  });
  const auto report = supervisor.run();
  EXPECT_TRUE(report.success) << report.error;
  // Only the unfinished leases ran, and the completed one kept its journal
  // on the merge list.
  std::sort(granted.begin(), granted.end());
  EXPECT_EQ(granted, (std::vector<std::uint64_t>{2, 3}));
  EXPECT_EQ(report.leases_planned, 2u);
  EXPECT_EQ(report.leases_completed, 3u);  // 1 recovered + 2 run now
  EXPECT_EQ(report.journal_paths.size(), 3u);
  const auto state = LeaseLog::recover(report.event_log_path);
  EXPECT_EQ(state.completed, (std::set<std::uint64_t>{1, 2, 3}));
}

// ---- shard_worker exit codes ------------------------------------------------

int run_to_exit(const std::vector<std::string>& argv) {
  ChildProcess child = ChildProcess::spawn(argv);
  const ExitStatus status = child.wait();
  EXPECT_EQ(status.kind, ExitStatus::Kind::kExited) << status.describe();
  return status.exit_code;
}

TEST(WorkerExitCodes, UsageRuntimeAndInjectedCrashAreDistinct) {
  const std::string bin = NADA_SHARD_WORKER_BIN;
  const std::string dir = fresh_dir("exit_codes");
  // Usage errors — the supervisor's fail-fast trigger.
  EXPECT_EQ(run_to_exit({bin, "--mode", "bogus"}), 2);
  EXPECT_EQ(run_to_exit({bin, "--no-such-flag"}), 2);
  EXPECT_EQ(run_to_exit({bin, "--mode", "worker", "--journal", dir + "/j"}),
            2);  // lease mode without its range
  EXPECT_EQ(run_to_exit({bin, "--mode", "worker", "--journal", dir + "/j",
                         "--range-lo", "zz", "--range-hi", "ff"}),
            2);  // malformed hex
  // Runtime failure: an unwritable store directory.
  EXPECT_EQ(run_to_exit({bin, "--mode", "single", "--quiet", "--candidates",
                         "4", "--store-dir", "/dev/null/nope"}),
            1);
  // Injected crash: the test-only fault flag's hard _exit mid-append.
  EXPECT_EQ(run_to_exit({bin, "--mode", "worker", "--quiet",
                         "--candidates", "6",
                         "--store-dir", dir,
                         "--journal", dir + "/crash.jsonl",
                         "--range-lo", "0000000000000000",
                         "--range-hi", "ffffffffffffffff",
                         "--crash-after-candidates", "1"}),
            42);
  // The crash really tore the journal: last line has no terminator.
  const std::string journal = util::read_file(dir + "/crash.jsonl");
  ASSERT_FALSE(journal.empty());
  EXPECT_NE(journal.back(), '\n');
}

// ---- THE invariant: kill-and-restart equivalence ----------------------------

using TrainedRow =
    std::tuple<std::size_t, std::string, double, std::vector<double>>;
std::vector<TrainedRow> trained_rows(const search::SearchResult& result) {
  std::vector<TrainedRow> rows;
  for (const auto& outcome : result.outcomes) {
    if (!outcome.fully_trained) continue;
    rows.emplace_back(outcome.stream_index, outcome.id, outcome.test_score,
                      outcome.early_rewards);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::vector<std::string> sorted_lines(const std::string& path) {
  std::vector<std::string> lines;
  std::istringstream in(util::read_file(path));
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) lines.push_back(line);
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

/// A supervised run of the REAL shard_worker binary with two injected
/// crashes (hard _exit mid-journal-append on the first two leases) and one
/// stale straggler (stops progressing and heartbeating, gets killed, its
/// range split and reassigned) must produce byte-identical rankings and
/// journal record sets to the same search run uninterrupted in one
/// process. This is the subsystem's reason to exist; everything above it
/// is scaffolding for this test.
TEST(SupervisedEquivalence, KillAndRestartMatchesUninterruptedRun) {
  constexpr std::size_t kCandidates = 24;
  const auto setup = tools::make_search_setup("abr", "state", kCandidates,
                                              /*gen_seed=*/77, /*window=*/0);

  // --- uninterrupted single-process run ---------------------------------
  const std::string single_dir = fresh_dir("equiv_single");
  search::ShardRunnerConfig single_shards;
  single_shards.num_shards = 1;
  single_shards.store_dir = single_dir;
  single_shards.worker_status = false;
  search::ShardRunner single_runner(*setup->domain, setup->config, 1234,
                                    single_shards);
  store::CandidateStore single_store(single_dir + "/single.jsonl",
                                     single_runner.scope());
  search::JobOptions options;
  options.store = &single_store;
  search::SearchJob job(*setup->domain, setup->config, 1234, *setup->source,
                        setup->fixed, options);
  const auto uninterrupted = job.run_to_completion();

  // --- supervised run with the full fault schedule ----------------------
  const std::string svc_dir = fresh_dir("equiv_svc");
  search::ShardRunnerConfig svc_shards;
  svc_shards.num_shards = 1;
  svc_shards.store_dir = svc_dir;
  search::ShardRunner svc_runner(*setup->domain, setup->config, 1234,
                                 svc_shards);
  SupervisorConfig config;
  config.num_workers = 2;
  config.initial_leases = 3;
  config.max_restarts = 3;
  config.heartbeat_timeout_seconds = 2.0;
  config.poll_interval_seconds = 0.05;
  config.dir = svc_dir;
  config.prefix = svc_runner.service_prefix();
  const auto command = [&svc_dir](const Lease& lease) {
    std::vector<std::string> argv{
        NADA_SHARD_WORKER_BIN, "--mode", "worker", "--quiet",
        "--journal", lease.journal_path,
        "--range-lo", hex_u64(lease.range.lo),
        "--range-hi", hex_u64(lease.range.hi),
        "--store-dir", svc_dir,
        "--candidates", std::to_string(kCandidates)};
    if (lease.attempt == 0 && lease.parent == 0) {
      // Leases 1 and 2 crash mid-append; lease 3 goes silent and straggles.
      if (lease.id <= 2) {
        argv.insert(argv.end(), {"--crash-after-candidates",
                                 std::to_string(lease.id)});
      } else if (lease.id == 3) {
        argv.insert(argv.end(), {"--stall-after-candidates", "2"});
      }
    }
    return argv;
  };
  Supervisor supervisor(config, command);
  const auto report = supervisor.run();
  ASSERT_TRUE(report.success) << report.error;
  // The fault schedule actually happened: two crash restarts, one stale
  // straggler killed, its range split and reassigned.
  EXPECT_GE(report.crash_restarts, 2u);
  EXPECT_GE(report.stale_kills, 1u);
  EXPECT_GE(report.splits, 1u);
  std::size_t restarts = 0, reassigns = 0;
  for (const auto& event : LeaseLog::read_events(report.event_log_path)) {
    const std::string kind = event.get("event").as_string();
    if (kind == "restart") ++restarts;
    if (kind == "reassign") ++reassigns;
  }
  EXPECT_GE(restarts, 2u);
  EXPECT_GE(reassigns, 2u);

  // Driver pass over every journal any lease ever owned (the straggler's
  // partial included).
  const auto supervised = svc_runner.merge_and_rank_paths(
      report.journal_paths, *setup->source, setup->fixed);

  // Byte-identical results: rankings and the journal record set.
  EXPECT_EQ(supervised.n_total, uninterrupted.n_total);
  EXPECT_EQ(supervised.n_fully_trained, uninterrupted.n_fully_trained);
  EXPECT_DOUBLE_EQ(supervised.original_score, uninterrupted.original_score);
  EXPECT_EQ(trained_rows(supervised), trained_rows(uninterrupted));
  const auto supervised_journal = sorted_lines(svc_runner.merged_store_path());
  EXPECT_EQ(supervised_journal, sorted_lines(single_store.path()));
  EXPECT_FALSE(supervised_journal.empty());
}

/// The same kill-and-restart invariant with NADA_STORE_FORMAT=binary: the
/// supervisor's lease journals, the workers' stores, and the merged store
/// all switch to .nsb (workers inherit the env var), a crash tears a
/// binary frame instead of a JSON line, and the run must still produce
/// rankings and a record set identical to an uninterrupted JSONL-backed
/// single-process run — the cross-format equivalence pin.
TEST(SupervisedEquivalence, BinaryFormatRestartMatchesJsonlRun) {
  constexpr std::size_t kCandidates = 16;
  const auto setup = tools::make_search_setup("abr", "state", kCandidates,
                                              /*gen_seed=*/78, /*window=*/0);

  // --- uninterrupted single-process run, default JSONL store ------------
  const std::string single_dir = fresh_dir("binequiv_single");
  store::StoreScope scope;
  std::vector<std::string> single_lines;
  search::SearchResult uninterrupted;
  {
    search::ShardRunnerConfig single_shards;
    single_shards.num_shards = 1;
    single_shards.store_dir = single_dir;
    single_shards.worker_status = false;
    search::ShardRunner single_runner(*setup->domain, setup->config, 4321,
                                      single_shards);
    scope = single_runner.scope();
    store::CandidateStore single_store(single_dir + "/single.jsonl", scope);
    search::JobOptions options;
    options.store = &single_store;
    search::SearchJob job(*setup->domain, setup->config, 4321, *setup->source,
                          setup->fixed, options);
    uninterrupted = job.run_to_completion();
    for (const auto& record : single_store.records()) {
      single_lines.push_back(store::CandidateStore::encode_line(record, scope));
    }
    std::sort(single_lines.begin(), single_lines.end());
  }

  // --- supervised binary-backed run with a mid-append crash -------------
  const char* saved = std::getenv("NADA_STORE_FORMAT");
  const std::string saved_value = saved != nullptr ? saved : "";
  ::setenv("NADA_STORE_FORMAT", "binary", 1);
  const auto restore_env = [&] {
    if (saved != nullptr) {
      ::setenv("NADA_STORE_FORMAT", saved_value.c_str(), 1);
    } else {
      ::unsetenv("NADA_STORE_FORMAT");
    }
  };
  const std::string svc_dir = fresh_dir("binequiv_svc");
  search::ShardRunnerConfig svc_shards;
  svc_shards.num_shards = 1;
  svc_shards.store_dir = svc_dir;
  search::ShardRunner svc_runner(*setup->domain, setup->config, 4321,
                                 svc_shards);
  EXPECT_TRUE(svc_runner.merged_store_path().ends_with(".nsb"));
  SupervisorConfig config;
  config.num_workers = 2;
  config.initial_leases = 2;
  config.max_restarts = 3;
  config.heartbeat_timeout_seconds = 5.0;
  config.poll_interval_seconds = 0.05;
  config.dir = svc_dir;
  config.prefix = svc_runner.service_prefix();
  const auto command = [&svc_dir](const Lease& lease) {
    std::vector<std::string> argv{
        NADA_SHARD_WORKER_BIN, "--mode", "worker", "--quiet",
        "--journal", lease.journal_path,
        "--range-lo", hex_u64(lease.range.lo),
        "--range-hi", hex_u64(lease.range.hi),
        "--store-dir", svc_dir,
        "--candidates", std::to_string(kCandidates)};
    if (lease.attempt == 0 && lease.id == 1) {
      argv.insert(argv.end(), {"--crash-after-candidates", "1"});
    }
    return argv;
  };
  Supervisor supervisor(config, command);
  const auto report = supervisor.run();
  restore_env();
  ASSERT_TRUE(report.success) << report.error;
  EXPECT_GE(report.crash_restarts, 1u);
  for (const auto& path : report.journal_paths) {
    EXPECT_TRUE(path.ends_with(".nsb")) << path;
  }

  ::setenv("NADA_STORE_FORMAT", "binary", 1);
  const auto supervised = svc_runner.merge_and_rank_paths(
      report.journal_paths, *setup->source, setup->fixed);
  const std::string merged_path = svc_runner.merged_store_path();
  restore_env();

  EXPECT_EQ(supervised.n_total, uninterrupted.n_total);
  EXPECT_EQ(supervised.n_fully_trained, uninterrupted.n_fully_trained);
  EXPECT_DOUBLE_EQ(supervised.original_score, uninterrupted.original_score);
  EXPECT_EQ(trained_rows(supervised), trained_rows(uninterrupted));

  // Identical record sets across formats: every record in the binary
  // merged store re-encodes to exactly the JSONL journal's line set.
  store::CandidateStore merged(merged_path, scope);
  EXPECT_EQ(merged.format(), store::StoreFormat::kBinary);
  std::vector<std::string> merged_lines;
  for (const auto& record : merged.records()) {
    merged_lines.push_back(store::CandidateStore::encode_line(record, scope));
  }
  std::sort(merged_lines.begin(), merged_lines.end());
  EXPECT_EQ(merged_lines, single_lines);
  EXPECT_FALSE(merged_lines.empty());
}

}  // namespace
}  // namespace nada::svc

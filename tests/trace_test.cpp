// Tests for the trace substrate: Trace mechanics, serialization formats,
// synthetic generators, and Table-1 dataset construction.
#include <gtest/gtest.h>

#include <cmath>

#include "trace/generator.h"
#include "trace/trace.h"
#include "util/rng.h"
#include "util/stats.h"

namespace nada::trace {
namespace {

Trace make_simple_trace() {
  // 0-10s at 1000 kbps, 10-20s at 3000 kbps.
  std::vector<TracePoint> pts;
  for (int t = 1; t <= 20; ++t) {
    pts.push_back({static_cast<double>(t), t <= 10 ? 1000.0 : 3000.0});
  }
  return Trace("simple", std::move(pts));
}

// ---- Trace invariants -------------------------------------------------------

TEST(Trace, RejectsEmpty) {
  EXPECT_THROW(Trace("x", {}), std::invalid_argument);
}

TEST(Trace, RejectsNonIncreasingTimestamps) {
  EXPECT_THROW(Trace("x", {{1.0, 100.0}, {1.0, 200.0}}),
               std::invalid_argument);
  EXPECT_THROW(Trace("x", {{2.0, 100.0}, {1.0, 200.0}}),
               std::invalid_argument);
}

TEST(Trace, RejectsNegativeBandwidth) {
  EXPECT_THROW(Trace("x", {{1.0, -5.0}}), std::invalid_argument);
}

TEST(Trace, RejectsNonFiniteBandwidth) {
  EXPECT_THROW(Trace("x", {{1.0, std::nan("")}}), std::invalid_argument);
}

TEST(Trace, LookupPicksCorrectSegment) {
  const Trace t = make_simple_trace();
  EXPECT_DOUBLE_EQ(t.bandwidth_kbps_at(1.5), 1000.0);
  EXPECT_DOUBLE_EQ(t.bandwidth_kbps_at(9.99), 1000.0);
  EXPECT_DOUBLE_EQ(t.bandwidth_kbps_at(10.5), 1000.0);  // sample at 10 holds
  EXPECT_DOUBLE_EQ(t.bandwidth_kbps_at(11.5), 3000.0);
}

TEST(Trace, LookupWrapsAround) {
  const Trace t = make_simple_trace();
  // duration = 20; t=21.5 wraps to 1.5.
  EXPECT_DOUBLE_EQ(t.bandwidth_kbps_at(21.5), t.bandwidth_kbps_at(1.5));
  EXPECT_DOUBLE_EQ(t.bandwidth_kbps_at(41.5), t.bandwidth_kbps_at(1.5));
}

TEST(Trace, NegativeTimeClampsToStart) {
  const Trace t = make_simple_trace();
  EXPECT_DOUBLE_EQ(t.bandwidth_kbps_at(-5.0), t.bandwidth_kbps_at(0.0));
}

TEST(Trace, MeanIsTimeWeighted) {
  const Trace t = make_simple_trace();
  // Segments: 1..10 at 1000 (9s of the first rate after t=1... the
  // integral spans sample i to i+1), so: 9 intervals at 1000, 1 boundary
  // interval at 1000 (10->11), 9 at 3000.
  const double expected = (10.0 * 1000.0 + 9.0 * 3000.0) / 19.0;
  EXPECT_NEAR(t.mean_kbps(), expected, 1e-9);
}

TEST(Trace, ScaledMultipliesBandwidth) {
  const Trace t = make_simple_trace();
  const Trace s = t.scaled(0.125);
  EXPECT_NEAR(s.mean_kbps(), t.mean_kbps() / 8.0, 1e-9);
  EXPECT_THROW(t.scaled(-1.0), std::invalid_argument);
}

TEST(Trace, StddevOfConstantIsZero) {
  std::vector<TracePoint> pts;
  for (int t = 1; t <= 5; ++t) pts.push_back({static_cast<double>(t), 500.0});
  EXPECT_DOUBLE_EQ(Trace("c", std::move(pts)).stddev_kbps(), 0.0);
}

// ---- serialization ----------------------------------------------------------

TEST(TraceIo, CookedRoundtrip) {
  const Trace t = make_simple_trace();
  const Trace back = from_cooked_format("back", to_cooked_format(t));
  ASSERT_EQ(back.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_NEAR(back.points()[i].time_s, t.points()[i].time_s, 1e-6);
    EXPECT_NEAR(back.points()[i].bandwidth_kbps, t.points()[i].bandwidth_kbps,
                1e-3);
  }
}

TEST(TraceIo, CookedRejectsGarbage) {
  EXPECT_THROW(from_cooked_format("bad", "1.0\tnot_a_number\n"),
               std::runtime_error);
}

TEST(TraceIo, MahimahiPreservesThroughput) {
  // Constant 12 Mbps for 30 s -> 1000 packets/s.
  std::vector<TracePoint> pts;
  for (int t = 1; t <= 30; ++t) {
    pts.push_back({static_cast<double>(t), 12000.0});
  }
  const Trace t("const12", std::move(pts));
  const std::string schedule = to_mahimahi_format(t);
  const Trace back = from_mahimahi_format("back", schedule);
  EXPECT_NEAR(back.mean_kbps(), 12000.0, 600.0);  // within 5%
}

TEST(TraceIo, MahimahiEmptyThrows) {
  EXPECT_THROW(from_mahimahi_format("x", ""), std::runtime_error);
}

// ---- generators --------------------------------------------------------------

class GeneratorMeanTest : public ::testing::TestWithParam<Environment> {};

TEST_P(GeneratorMeanTest, MeanThroughputMatchesTable1) {
  const Environment env = GetParam();
  const DatasetSpec spec = paper_spec(env);
  util::Rng rng(12345);
  util::RunningStats means;
  for (int i = 0; i < 30; ++i) {
    const Trace t = generate_trace(env, 600.0, rng);
    means.add(t.mean_kbps() / 1000.0);
  }
  // Table 1's mean throughput within 20%.
  EXPECT_NEAR(means.mean(), spec.mean_throughput_mbps,
              spec.mean_throughput_mbps * 0.20)
      << environment_name(env);
}

TEST_P(GeneratorMeanTest, TraceIsPositiveAndSampledAtOneHz) {
  const Environment env = GetParam();
  util::Rng rng(99);
  const Trace t = generate_trace(env, 300.0, rng);
  EXPECT_EQ(t.size(), 300u);
  for (const auto& p : t.points()) {
    EXPECT_GT(p.bandwidth_kbps, 0.0);
  }
  EXPECT_NEAR(t.duration_s(), 300.0, 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllEnvironments, GeneratorMeanTest,
                         ::testing::ValuesIn(all_environments()),
                         [](const auto& info) {
                           return environment_name(info.param);
                         });

TEST(Generator, StarlinkIsMoreVariableThanFcc) {
  util::Rng rng(7);
  util::RunningStats fcc_cv, starlink_cv;
  for (int i = 0; i < 20; ++i) {
    const Trace f = generate_trace(Environment::kFcc, 400.0, rng);
    const Trace s = generate_trace(Environment::kStarlink, 400.0, rng);
    fcc_cv.add(f.stddev_kbps() / f.mean_kbps());
    starlink_cv.add(s.stddev_kbps() / s.mean_kbps());
  }
  EXPECT_GT(starlink_cv.mean(), fcc_cv.mean() * 1.5);
}

TEST(Generator, FiveGHasOutages) {
  util::Rng rng(11);
  // 5G blockage should produce occasional deep dips relative to its mean.
  int dips = 0;
  for (int i = 0; i < 10; ++i) {
    const Trace t = generate_trace(Environment::k5G, 400.0, rng);
    const double mean = t.mean_kbps();
    for (const auto& p : t.points()) {
      if (p.bandwidth_kbps < mean * 0.1) {
        ++dips;
        break;
      }
    }
  }
  EXPECT_GE(dips, 5);
}

TEST(Generator, RejectsTooShortDuration) {
  util::Rng rng(1);
  EXPECT_THROW(generate_trace(Environment::kFcc, 1.0, rng),
               std::invalid_argument);
}

TEST(Generator, DeterministicGivenSeed) {
  util::Rng a(5);
  util::Rng b(5);
  const Trace ta = generate_trace(Environment::k4G, 120.0, a);
  const Trace tb = generate_trace(Environment::k4G, 120.0, b);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_DOUBLE_EQ(ta.points()[i].bandwidth_kbps,
                     tb.points()[i].bandwidth_kbps);
  }
}

// ---- datasets ----------------------------------------------------------------

TEST(Dataset, PaperSpecsMatchTable1) {
  const DatasetSpec fcc = paper_spec(Environment::kFcc);
  EXPECT_EQ(fcc.train_traces, 85u);
  EXPECT_EQ(fcc.test_traces, 290u);
  EXPECT_EQ(fcc.train_epochs, 40000u);
  EXPECT_EQ(fcc.test_interval, 500u);
  EXPECT_DOUBLE_EQ(fcc.mean_throughput_mbps, 1.3);

  const DatasetSpec sl = paper_spec(Environment::kStarlink);
  EXPECT_EQ(sl.train_traces, 13u);
  EXPECT_EQ(sl.test_traces, 12u);
  EXPECT_EQ(sl.train_epochs, 4000u);
  EXPECT_EQ(sl.test_interval, 100u);

  const DatasetSpec g4 = paper_spec(Environment::k4G);
  EXPECT_EQ(g4.train_traces, 119u);
  EXPECT_EQ(g4.test_traces, 121u);
  EXPECT_DOUBLE_EQ(g4.mean_throughput_mbps, 19.8);

  const DatasetSpec g5 = paper_spec(Environment::k5G);
  EXPECT_EQ(g5.train_traces, 117u);
  EXPECT_EQ(g5.test_traces, 119u);
  EXPECT_DOUBLE_EQ(g5.mean_throughput_mbps, 30.2);
}

TEST(Dataset, ScaledCountsFollowSpecRatio) {
  const Dataset ds = build_dataset(Environment::kFcc, 0.1, 42);
  EXPECT_EQ(ds.train.size(), 9u);   // round(85 * 0.1) = 9
  EXPECT_EQ(ds.test.size(), 29u);   // round(290 * 0.1) = 29
}

TEST(Dataset, MinimumTwoTracesPerSplit) {
  const Dataset ds = build_dataset(Environment::kStarlink, 0.01, 42);
  EXPECT_GE(ds.train.size(), 2u);
  EXPECT_GE(ds.test.size(), 2u);
}

TEST(Dataset, HoursScaleWithTraceCount) {
  const Dataset ds = build_dataset(Environment::k4G, 0.1, 7);
  const DatasetSpec spec = paper_spec(Environment::k4G);
  const double expected_train_hours =
      spec.train_hours * static_cast<double>(ds.train.size()) /
      static_cast<double>(spec.train_traces);
  EXPECT_NEAR(ds.train_hours(), expected_train_hours,
              expected_train_hours * 0.05);
}

TEST(Dataset, MeanThroughputNearSpec) {
  const Dataset ds = build_dataset(Environment::k5G, 0.1, 3);
  const DatasetSpec spec = paper_spec(Environment::k5G);
  EXPECT_NEAR(ds.mean_throughput_mbps(), spec.mean_throughput_mbps,
              spec.mean_throughput_mbps * 0.25);
}

TEST(Dataset, RejectsNonPositiveScale) {
  EXPECT_THROW(build_dataset(Environment::kFcc, 0.0, 1),
               std::invalid_argument);
}

TEST(Dataset, DifferentSeedsDifferentTraces) {
  const Dataset a = build_dataset(Environment::kStarlink, 0.2, 1);
  const Dataset b = build_dataset(Environment::kStarlink, 0.2, 2);
  ASSERT_FALSE(a.train.empty());
  ASSERT_FALSE(b.train.empty());
  EXPECT_NE(a.train[0].points()[10].bandwidth_kbps,
            b.train[0].points()[10].bandwidth_kbps);
}

}  // namespace
}  // namespace nada::trace

// Tests for util: RNG, statistics, strings, tables, thread pool, scaling.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <set>
#include <thread>

#include "util/fs.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/scale.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace nada::util {
namespace {

// ---- Rng -------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 50; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 45);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng(3);
  EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(Rng, UniformIntThrowsOnInvertedRange) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform_int(5, 2), std::invalid_argument);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.normal(2.0, 3.0));
  EXPECT_NEAR(stats.mean(), 2.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.exponential(0.5));
  EXPECT_NEAR(stats.mean(), 2.0, 0.05);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(17);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng(29);
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 100000; ++i) {
    ++counts[rng.weighted_index(weights)];
  }
  EXPECT_NEAR(counts[0] / 100000.0, 0.1, 0.01);
  EXPECT_NEAR(counts[1] / 100000.0, 0.3, 0.01);
  EXPECT_NEAR(counts[2] / 100000.0, 0.6, 0.01);
}

TEST(Rng, WeightedIndexIgnoresNegativeWeights) {
  Rng rng(29);
  const std::vector<double> weights = {-5.0, 1.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.weighted_index(weights), 1u);
  }
}

TEST(Rng, WeightedIndexThrowsOnAllZero) {
  Rng rng(29);
  const std::vector<double> weights = {0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(weights), std::invalid_argument);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(101);
  Rng b = a.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SampleIndicesDistinct) {
  Rng rng(37);
  const auto sample = rng.sample_indices(100, 20);
  EXPECT_EQ(sample.size(), 20u);
  const std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (auto i : sample) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleIndicesThrowsWhenKTooLarge) {
  Rng rng(37);
  EXPECT_THROW(rng.sample_indices(5, 6), std::invalid_argument);
}

TEST(Rng, ChoiceThrowsOnEmpty) {
  Rng rng(41);
  const std::vector<int> empty;
  EXPECT_THROW(rng.choice(empty), std::invalid_argument);
}

// ---- stats -----------------------------------------------------------------

TEST(RunningStats, MatchesBatchComputation) {
  Rng rng(43);
  RunningStats rs;
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(5.0, 2.0);
    rs.add(x);
    xs.push_back(x);
  }
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-6);
}

TEST(RunningStats, MergeEqualsCombined) {
  Rng rng(47);
  RunningStats a, b, all;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0, 10);
    a.add(x);
    all.add(x);
  }
  for (int i = 0; i < 300; ++i) {
    const double x = rng.uniform(5, 20);
    b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
}

TEST(Stats, MeanKnownValues) {
  const std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, VarianceKnownValues) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{1.0}), 0.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4, 1, 2, 3}), 2.5);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
}

TEST(Stats, PercentileRejectsBadP) {
  const std::vector<double> xs = {1, 2};
  EXPECT_THROW(percentile(xs, -1), std::invalid_argument);
  EXPECT_THROW(percentile(xs, 101), std::invalid_argument);
}

TEST(Stats, EmaConvergesToConstant) {
  const std::vector<double> xs(50, 7.0);
  EXPECT_NEAR(ema(xs, 0.3), 7.0, 1e-9);
}

TEST(Stats, EmaSeriesFirstElementIsInput) {
  const std::vector<double> xs = {3.0, 5.0};
  const auto series = ema_series(xs, 0.5);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0], 3.0);
  EXPECT_DOUBLE_EQ(series[1], 4.0);
}

TEST(Stats, EmaRejectsBadAlpha) {
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_THROW(ema(xs, 0.0), std::invalid_argument);
  EXPECT_THROW(ema(xs, 1.5), std::invalid_argument);
}

TEST(Stats, LinearTrendOfLine) {
  std::vector<double> xs;
  for (int i = 0; i < 10; ++i) xs.push_back(3.0 + 2.0 * i);
  EXPECT_NEAR(linear_trend(xs), 2.0, 1e-12);
}

TEST(Stats, LinearTrendOfConstantIsZero) {
  const std::vector<double> xs(10, 4.0);
  EXPECT_NEAR(linear_trend(xs), 0.0, 1e-12);
}

TEST(Stats, LinregPredictExtrapolatesLine) {
  std::vector<double> xs;
  for (int i = 0; i < 8; ++i) xs.push_back(1.0 + 0.5 * i);
  EXPECT_NEAR(linreg_predict_next(xs), 1.0 + 0.5 * 8, 1e-9);
}

TEST(Stats, LinregPredictSinglePoint) {
  EXPECT_DOUBLE_EQ(linreg_predict_next(std::vector<double>{4.0}), 4.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> ys = {2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> zs = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, zs), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSideIsZero) {
  const std::vector<double> xs = {1, 2, 3};
  const std::vector<double> ys = {5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Stats, TailMean) {
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6};
  EXPECT_DOUBLE_EQ(tail_mean(xs, 2), 5.5);
  EXPECT_DOUBLE_EQ(tail_mean(xs, 100), 3.5);
  EXPECT_DOUBLE_EQ(tail_mean(std::vector<double>{}, 3), 0.0);
}

TEST(Stats, SavgolPreservesLine) {
  // A quadratic-fit smoother reproduces linear data exactly.
  std::vector<double> xs;
  for (int i = 0; i < 9; ++i) xs.push_back(2.0 + 1.5 * i);
  const auto smoothed = savgol5(xs);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_NEAR(smoothed[i], xs[i], 1e-9) << "at " << i;
  }
}

TEST(Stats, SavgolShortInputUnchanged) {
  const std::vector<double> xs = {1, 5, 2};
  EXPECT_EQ(savgol5(xs), xs);
}

TEST(Stats, SavgolDampensImpulse) {
  std::vector<double> xs(9, 0.0);
  xs[4] = 35.0;
  const auto smoothed = savgol5(xs);
  EXPECT_LT(smoothed[4], 35.0);
  EXPECT_GT(smoothed[4], 0.0);
}

// ---- strings ---------------------------------------------------------------

TEST(Strings, SplitBasic) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_FALSE(starts_with("he", "hello"));
}

TEST(Strings, JoinRoundtrip) {
  const std::vector<std::string> parts = {"a", "b", "c"};
  EXPECT_EQ(join(parts, "-"), "a-b-c");
  EXPECT_EQ(join(std::vector<std::string>{}, "-"), "");
}

TEST(Strings, Fnv1aDistinct) {
  EXPECT_NE(fnv1a64("abc"), fnv1a64("abd"));
  EXPECT_EQ(fnv1a64("abc"), fnv1a64("abc"));
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(replace_all("xyz", "q", "r"), "xyz");
}

// ---- table -----------------------------------------------------------------

TEST(TextTable, AlignsColumns) {
  TextTable t("demo");
  t.set_header({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string rendered = t.to_string();
  EXPECT_NE(rendered.find("demo"), std::string::npos);
  EXPECT_NE(rendered.find("longer"), std::string::npos);
  EXPECT_NE(rendered.find("-----"), std::string::npos);
}

TEST(TextTable, CsvEscaping) {
  TextTable t;
  t.add_row({"a,b", "say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TextTable, MixedRowFormatsNumbers) {
  TextTable t;
  t.add_row_mixed({"row"}, {1.23456}, 2);
  EXPECT_NE(t.to_string().find("1.23"), std::string::npos);
}

TEST(FormatHelpers, Percent) {
  EXPECT_EQ(format_percent(0.529), "+52.9%");
  EXPECT_EQ(format_percent(-0.031), "-3.1%");
}

// ---- thread pool -----------------------------------------------------------

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  pool.parallel_for(100, [&counter](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 40 + 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForRethrowsFirstWorkerException) {
  ThreadPool pool(4);
  std::vector<int> slots(64, 0);
  EXPECT_THROW(
      pool.parallel_for(slots.size(),
                        [&slots](std::size_t i) {
                          if (i % 16 == 3) {
                            throw std::runtime_error("worker blew up");
                          }
                          slots[i] = 1;
                        }),
      std::runtime_error);
  // Every non-throwing item still ran to completion before the rethrow.
  for (std::size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(slots[i], i % 16 == 3 ? 0 : 1) << i;
  }
}

TEST(ThreadPool, ParallelForWritesDistinctSlots) {
  ThreadPool pool(8);
  std::vector<int> slots(500, 0);
  pool.parallel_for(slots.size(), [&slots](std::size_t i) {
    slots[i] = static_cast<int>(i) * 2;
  });
  for (std::size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(slots[i], static_cast<int>(i) * 2);
  }
}

// ---- scale -----------------------------------------------------------------

TEST(Scale, ApplyRespectsFloor) {
  EXPECT_EQ(ScaleConfig::apply(1000, 0.001, 5), 5u);
  EXPECT_EQ(ScaleConfig::apply(1000, 0.5, 1), 500u);
  EXPECT_EQ(ScaleConfig::apply(1000, 0.0, 3), 3u);
}

TEST(Scale, IdentityAtFull) {
  ScaleConfig s;
  s.gen = s.epochs = s.seeds = s.traces = 1.0;
  EXPECT_EQ(s.gen_count(3000), 3000u);
  EXPECT_EQ(s.epoch_count(40000), 40000u);
  EXPECT_EQ(s.seed_count(5), 5u);
}

TEST(Scale, EnvDoubleFallback) {
  ::unsetenv("NADA_TEST_ENV_VAR");
  EXPECT_DOUBLE_EQ(env_double("NADA_TEST_ENV_VAR", 2.5), 2.5);
  ::setenv("NADA_TEST_ENV_VAR", "0.125", 1);
  EXPECT_DOUBLE_EQ(env_double("NADA_TEST_ENV_VAR", 2.5), 0.125);
  ::setenv("NADA_TEST_ENV_VAR", "garbage", 1);
  EXPECT_DOUBLE_EQ(env_double("NADA_TEST_ENV_VAR", 2.5), 2.5);
  ::unsetenv("NADA_TEST_ENV_VAR");
}

TEST(Scale, DescribeMentionsFactors) {
  ScaleConfig s;
  s.gen = 0.25;
  EXPECT_NE(s.describe().find("0.25"), std::string::npos);
}

TEST(Scale, FromEnvRejectsNonPositiveAndNaNFactors) {
  ::setenv("NADA_SCALE_GEN", "0", 1);
  EXPECT_THROW(ScaleConfig::from_env(), std::runtime_error);
  ::setenv("NADA_SCALE_GEN", "-0.5", 1);
  EXPECT_THROW(ScaleConfig::from_env(), std::runtime_error);
  ::setenv("NADA_SCALE_GEN", "nan", 1);
  EXPECT_THROW(ScaleConfig::from_env(), std::runtime_error);
  ::setenv("NADA_SCALE_GEN", "inf", 1);
  EXPECT_THROW(ScaleConfig::from_env(), std::runtime_error);
  // Set-but-unparseable is an error too, not a silent fallback.
  ::setenv("NADA_SCALE_GEN", "O.5", 1);
  EXPECT_THROW(ScaleConfig::from_env(), std::runtime_error);
  ::setenv("NADA_SCALE_GEN", "0.5x", 1);
  EXPECT_THROW(ScaleConfig::from_env(), std::runtime_error);
  ::setenv("NADA_SCALE_GEN", "0.5", 1);
  EXPECT_DOUBLE_EQ(ScaleConfig::from_env().gen, 0.5);
  ::unsetenv("NADA_SCALE_GEN");
  EXPECT_NO_THROW(ScaleConfig::from_env());
}

// ---- json ------------------------------------------------------------------

TEST(Json, ObjectRoundTripWithEscapes) {
  JsonValue obj = JsonValue::object();
  obj.set("name", JsonValue::string("line\nbreak \"quoted\" \\slash\t"));
  obj.set("count", JsonValue::number(42.5));
  obj.set("flag", JsonValue::boolean(true));
  obj.set("missing", JsonValue::null());
  JsonValue arr = JsonValue::array();
  arr.push_back(JsonValue::number(-1.25));
  arr.push_back(JsonValue::string("x"));
  obj.set("items", std::move(arr));

  const JsonValue parsed = JsonValue::parse(obj.dump());
  EXPECT_EQ(parsed.get("name").as_string(),
            "line\nbreak \"quoted\" \\slash\t");
  EXPECT_DOUBLE_EQ(parsed.get("count").as_number(), 42.5);
  EXPECT_TRUE(parsed.get("flag").as_bool());
  EXPECT_TRUE(parsed.get("missing").is_null());
  EXPECT_DOUBLE_EQ(parsed.get("items").at(0).as_number(), -1.25);
  EXPECT_EQ(parsed.get("items").at(1).as_string(), "x");
  // Deterministic dumps: parse(dump) dumps identically.
  EXPECT_EQ(parsed.dump(), obj.dump());
}

TEST(Json, NonFiniteNumbersDegradeToNull) {
  JsonValue obj = JsonValue::object();
  obj.set("bad", JsonValue::number(std::nan("")));
  const JsonValue parsed = JsonValue::parse(obj.dump());
  EXPECT_TRUE(parsed.get("bad").is_null());
  EXPECT_DOUBLE_EQ(parsed.get("bad").as_number(-1.0), -1.0);
}

TEST(Json, RejectsTornAndTrailingInput) {
  EXPECT_THROW(JsonValue::parse("{\"a\":1"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{\"a\":1} extra"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{\"a\":}"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse(""), std::runtime_error);
}

TEST(Json, DoublesHelpersRoundTrip) {
  const std::vector<double> values = {1.0, -2.5, 0.0, 1e-9};
  const JsonValue encoded = json_doubles(values);
  EXPECT_EQ(json_to_doubles(JsonValue::parse(encoded.dump())), values);
}

TEST(Json, DoublesHelpersRoundTripNonFinite) {
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> values = {1.0, std::nan(""), inf, -inf};
  const auto decoded =
      json_to_doubles(JsonValue::parse(json_doubles(values).dump()));
  ASSERT_EQ(decoded.size(), 4u);
  EXPECT_DOUBLE_EQ(decoded[0], 1.0);
  EXPECT_TRUE(std::isnan(decoded[1]));
  EXPECT_EQ(decoded[2], inf);
  EXPECT_EQ(decoded[3], -inf);
}

// ---- fs --------------------------------------------------------------------

TEST(Fs, AtomicWriteAndReadRoundTrip) {
  const std::string path =
      std::string(::testing::TempDir()) + "/nada_fs_test_roundtrip.txt";
  write_file_atomic(path, "hello\nstore\n");
  EXPECT_TRUE(file_exists(path));
  EXPECT_EQ(read_file(path), "hello\nstore\n");
  write_file_atomic(path, "replaced");  // atomic replace, not append
  EXPECT_EQ(read_file(path), "replaced");
  std::remove(path.c_str());
}

TEST(Fs, MissingFilesAreReportedNotInvented) {
  const std::string path =
      std::string(::testing::TempDir()) + "/nada_fs_test_missing.txt";
  std::remove(path.c_str());
  EXPECT_FALSE(file_exists(path));
  EXPECT_FALSE(read_file_if_exists(path).has_value());
  EXPECT_THROW(read_file(path), std::runtime_error);
}

}  // namespace
}  // namespace nada::util

// Tests for the video model: ladders, chunk sizes, and QoE_lin.
#include <gtest/gtest.h>

#include "util/rng.h"
#include "video/video.h"

namespace nada::video {
namespace {

TEST(BitrateLadder, PensieveValues) {
  const BitrateLadder& ladder = pensieve_ladder();
  ASSERT_EQ(ladder.levels(), 6u);
  EXPECT_DOUBLE_EQ(ladder.kbps(0), 300.0);
  EXPECT_DOUBLE_EQ(ladder.kbps(5), 4300.0);
  EXPECT_DOUBLE_EQ(ladder.max_kbps(), 4300.0);
}

TEST(BitrateLadder, YoutubeValues) {
  const BitrateLadder& ladder = youtube_ladder();
  ASSERT_EQ(ladder.levels(), 6u);
  EXPECT_DOUBLE_EQ(ladder.kbps(0), 1850.0);
  EXPECT_DOUBLE_EQ(ladder.kbps(5), 53000.0);
}

TEST(BitrateLadder, RejectsBadLadders) {
  EXPECT_THROW(BitrateLadder({}), std::invalid_argument);
  EXPECT_THROW(BitrateLadder({100, 100}), std::invalid_argument);
  EXPECT_THROW(BitrateLadder({200, 100}), std::invalid_argument);
  EXPECT_THROW(BitrateLadder({0, 100}), std::invalid_argument);
}

TEST(BitrateLadder, OutOfRangeLevelThrows) {
  EXPECT_THROW(pensieve_ladder().kbps(6), std::out_of_range);
}

TEST(Video, SizesScaleWithBitrate) {
  util::Rng rng(1);
  const Video v("v", pensieve_ladder(), 48, 4.0, rng);
  for (std::size_t c = 0; c < v.num_chunks(); ++c) {
    for (std::size_t l = 1; l < 6; ++l) {
      EXPECT_GT(v.chunk_bytes(c, l), v.chunk_bytes(c, l - 1));
    }
  }
}

TEST(Video, SizesNearNominal) {
  util::Rng rng(2);
  const Video v("v", pensieve_ladder(), 48, 4.0, rng);
  // Nominal bytes for 1200 kbps over 4 s = 600,000; VBR keeps it within
  // a generous band.
  for (std::size_t c = 0; c < v.num_chunks(); ++c) {
    const double bytes = v.chunk_bytes(c, 2);
    EXPECT_GT(bytes, 600000.0 * 0.5);
    EXPECT_LT(bytes, 600000.0 * 2.0);
  }
}

TEST(Video, VbrFactorSharedAcrossLevels) {
  util::Rng rng(3);
  const Video v("v", pensieve_ladder(), 10, 4.0, rng);
  // Ratio between two levels is constant per chunk (same factor).
  const double ratio0 = v.chunk_bytes(0, 3) / v.chunk_bytes(0, 1);
  for (std::size_t c = 1; c < 10; ++c) {
    EXPECT_NEAR(v.chunk_bytes(c, 3) / v.chunk_bytes(c, 1), ratio0, 1e-9);
  }
}

TEST(Video, AllLevelsVectorMatchesScalars) {
  util::Rng rng(4);
  const Video v("v", youtube_ladder(), 8, 4.0, rng);
  const auto all = v.chunk_bytes_all_levels(5);
  ASSERT_EQ(all.size(), 6u);
  for (std::size_t l = 0; l < 6; ++l) {
    EXPECT_DOUBLE_EQ(all[l], v.chunk_bytes(5, l));
  }
}

TEST(Video, InvalidConstructionThrows) {
  util::Rng rng(5);
  EXPECT_THROW(Video("v", pensieve_ladder(), 0, 4.0, rng),
               std::invalid_argument);
  EXPECT_THROW(Video("v", pensieve_ladder(), 10, 0.0, rng),
               std::invalid_argument);
}

TEST(Video, ChunkIndexOutOfRangeThrows) {
  util::Rng rng(6);
  const Video v("v", pensieve_ladder(), 10, 4.0, rng);
  EXPECT_THROW(v.chunk_bytes(10, 0), std::out_of_range);
}

TEST(Video, DurationIsChunksTimesLength) {
  util::Rng rng(7);
  const Video v("v", pensieve_ladder(), 48, 4.0, rng);
  EXPECT_DOUBLE_EQ(v.duration_s(), 192.0);
}

TEST(Video, TestVideoDeterministicForSeed) {
  const Video a = make_test_video(pensieve_ladder(), 9);
  const Video b = make_test_video(pensieve_ladder(), 9);
  for (std::size_t c = 0; c < a.num_chunks(); ++c) {
    EXPECT_DOUBLE_EQ(a.chunk_bytes(c, 3), b.chunk_bytes(c, 3));
  }
}

// ---- QoE --------------------------------------------------------------------

TEST(QoELin, RebufferPenaltyEqualsTopBitrate) {
  const QoELin qoe(pensieve_ladder());
  EXPECT_DOUBLE_EQ(qoe.rebuffer_penalty_per_s(), 4.3);
  const QoELin qoe_hi(youtube_ladder());
  EXPECT_DOUBLE_EQ(qoe_hi.rebuffer_penalty_per_s(), 53.0);
}

TEST(QoELin, SteadyStateRewardIsBitrate) {
  const QoELin qoe(pensieve_ladder());
  // Same level, no stall: reward = bitrate in Mbps.
  EXPECT_DOUBLE_EQ(qoe.chunk_reward(2, 2, 0.0), 1.2);
  EXPECT_DOUBLE_EQ(qoe.chunk_reward(5, 5, 0.0), 4.3);
}

TEST(QoELin, SmoothnessPenaltyIsSymmetric) {
  const QoELin qoe(pensieve_ladder());
  const double up = qoe.chunk_reward(3, 1, 0.0);
  const double down = qoe.chunk_reward(1, 3, 0.0);
  // up: 1.85 - |1.85-0.75| = 0.75 ; down: 0.75 - 1.1 = -0.35
  EXPECT_NEAR(up, 0.75, 1e-12);
  EXPECT_NEAR(down, -0.35, 1e-12);
}

TEST(QoELin, RebufferDominates) {
  const QoELin qoe(pensieve_ladder());
  // One second of stall at max quality wipes out the bitrate term.
  EXPECT_NEAR(qoe.chunk_reward(5, 5, 1.0), 0.0, 1e-12);
  EXPECT_LT(qoe.chunk_reward(0, 0, 2.0), -8.0);
}

TEST(QoELin, NegativeRebufferThrows) {
  const QoELin qoe(pensieve_ladder());
  EXPECT_THROW(qoe.chunk_reward(0, 0, -0.1), std::invalid_argument);
}

}  // namespace
}  // namespace nada::video

// Shared plumbing for the search CLIs (shard_worker, search_service).
//
// One sharded search spans several processes — workers, a supervisor, a
// merge driver — and they must agree on three things or the equivalence
// diffs (CI's shard-equivalence-smoke and supervisor-smoke jobs) are
// meaningless:
//
//   * the SEARCH: domain datasets, funnel config, generator seeds — built
//     here once (make_search_setup) and flag-for-flag identical across
//     every mode of every tool,
//   * the OUTPUT: `RANK,<pos>,<id>,<fingerprint>,<score>` lines
//     (print_ranking), so two runs diff with grep + diff,
//   * the EXIT CODES: the supervisor's restart policy branches on them
//     (kExitUsage aborts the run — a config bug reproduces under restart;
//     anything else nonzero is restartable), so they are constants pinned
//     by tests/svc_test.cpp, not incidental values.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "cc/cc_domain.h"
#include "env/abr_domain.h"
#include "examples/example_common.h"
#include "gen/arch_gen.h"
#include "gen/state_gen.h"
#include "search/candidate.h"
#include "search/search_job.h"
#include "trace/generator.h"
#include "video/video.h"

namespace nada::tools {

/// Exit-code contract of the worker CLIs (docs/SERVICE.md). The supervisor
/// reads these: kExitUsage fails fast, every other nonzero code or signal
/// is treated as a restartable crash.
inline constexpr int kExitOk = 0;
/// Unhandled exception during the run (I/O error, bad store, ...).
inline constexpr int kExitRuntime = 1;
/// Bad command-line arguments. A supervisor restart would rebuild the same
/// argv and fail identically, so this code aborts the whole run instead.
inline constexpr int kExitUsage = 2;
/// Test-only: --crash-after-candidates fired (hard _exit mid-append). A
/// deliberate value far from the conventional small codes so a real
/// failure is never mistaken for an injected one in CI assertions.
inline constexpr int kExitCrashInjected = 42;

/// Everything one funnel run needs, built from CLI flags. Heap-allocate
/// and keep put: `fixed` points into `config` / `fixed_state`, so the
/// struct must not move (no copy/move; make_search_setup returns a
/// unique_ptr).
struct SearchSetup {
  SearchSetup() = default;
  SearchSetup(const SearchSetup&) = delete;
  SearchSetup& operator=(const SearchSetup&) = delete;

  trace::Dataset dataset;
  std::optional<video::Video> video;
  cc::CcConfig cc_config;
  std::unique_ptr<env::TaskDomain> domain;
  search::SearchConfig config;
  std::unique_ptr<gen::StateGenerator> state_gen;
  std::unique_ptr<gen::ArchGenerator> arch_gen;
  std::unique_ptr<search::CandidateSource> source;
  std::optional<dsl::StateProgram> fixed_state;
  search::FixedDesign fixed;
};

/// The demo-scale funnel config every mode of every tool shares (the
/// search must be identical across worker, merge, single, and supervised
/// runs for the equivalence diffs to mean anything).
inline search::SearchConfig demo_config(std::size_t candidates) {
  search::SearchConfig config = examples::demo_funnel_config(
      candidates, /*early_epochs=*/8, /*full_train_top=*/3, /*seeds=*/2,
      /*epochs=*/24, /*test_interval=*/8, /*max_eval_traces=*/4);
  config.baseline_arch = examples::small_pensieve_arch(8, 8, 8, 16);
  return config;
}

/// Builds the domain, funnel config, candidate stream, and fixed design
/// half from the flag values. The (dataset seed, cc parameters) are fixed:
/// every process of one sharded search must score candidates on the same
/// data or the merged journals would not be comparable. `domain_name` is
/// "abr"|"cc", `search_kind` "state"|"arch" (validate before calling).
inline std::unique_ptr<SearchSetup> make_search_setup(
    const std::string& domain_name, const std::string& search_kind,
    std::size_t candidates, std::uint64_t gen_seed, std::size_t window) {
  auto setup = std::make_unique<SearchSetup>();
  if (domain_name == "abr") {
    setup->dataset = trace::build_dataset(trace::Environment::k4G, 0.05, 21);
    setup->video = video::make_test_video(video::youtube_ladder(), 42);
    setup->domain =
        std::make_unique<env::AbrDomain>(setup->dataset, *setup->video);
  } else {
    setup->dataset = trace::build_dataset(trace::Environment::k4G, 0.2, 7);
    setup->cc_config.init_rate_mbps = 2.0;
    setup->cc_config.steps_per_episode = 60;
    setup->domain =
        std::make_unique<cc::CcDomain>(setup->dataset, setup->cc_config);
  }

  setup->config = demo_config(candidates);
  // Execution knob only: batch (window 0) and streaming runs share one
  // store scope, so their journals are directly comparable.
  setup->config.window_size = window;

  if (search_kind == "state") {
    setup->state_gen = std::make_unique<gen::StateGenerator>(
        domain_name == "cc" ? gen::cc_state_space() : gen::abr_state_space(),
        gen::gpt4_profile(), gen::PromptStrategy{}, gen_seed);
    setup->source =
        std::make_unique<search::StateCandidateSource>(*setup->state_gen);
    setup->fixed.arch = &setup->config.baseline_arch;
  } else {
    setup->arch_gen = std::make_unique<gen::ArchGenerator>(
        gen::gpt4_profile(), gen::PromptStrategy{}, gen_seed, 0.25);
    setup->source =
        std::make_unique<search::ArchCandidateSource>(*setup->arch_gen);
    setup->fixed_state =
        dsl::StateProgram::compile(setup->domain->baseline_state_source());
    setup->fixed.state = &*setup->fixed_state;
  }
  return setup;
}

/// Fingerprints of the ranked outcomes only, pulled by replaying the
/// stream in small windows and keeping just the wanted positions — the
/// ranking printout must not hold O(num_candidates) specs when the search
/// itself ran at O(window) memory.
inline std::map<std::size_t, std::string> ranked_fingerprints(
    search::CandidateSource& source, const search::FixedDesign& fixed,
    const search::SearchResult& result, std::size_t num_candidates) {
  std::set<std::size_t> wanted;
  for (const auto& outcome : result.outcomes) {
    if (outcome.fully_trained) wanted.insert(outcome.stream_index);
  }
  std::map<std::size_t, std::string> out;
  source.reset();
  std::size_t position = 0;
  while (!wanted.empty() && position < num_candidates) {
    const auto window = source.generate(
        std::min<std::size_t>(64, num_candidates - position));
    if (window.empty()) break;
    for (const auto& spec : window) {
      if (wanted.erase(position) > 0) {
        out[position] = search::fingerprint_of(spec, fixed).hex();
      }
      ++position;
    }
  }
  return out;
}

/// `RANK,<position>,<id>,<fingerprint>,<score>` lines, best first; ties by
/// stream position (the funnel's own tie-break), so the listing is
/// deterministic. Outcomes are addressed through stream_index rather than
/// their result position: in streaming mode the result holds only the
/// retained candidates, and the ranking must still diff cleanly against a
/// batch run.
inline void print_ranking(
    std::ostream& out, const search::SearchResult& result,
    const std::map<std::size_t, std::string>& fingerprints) {
  std::vector<std::size_t> ranked;
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    if (result.outcomes[i].fully_trained) ranked.push_back(i);
  }
  std::sort(ranked.begin(), ranked.end(), [&](std::size_t a, std::size_t b) {
    if (result.outcomes[a].test_score != result.outcomes[b].test_score) {
      return result.outcomes[a].test_score > result.outcomes[b].test_score;
    }
    return result.outcomes[a].stream_index < result.outcomes[b].stream_index;
  });
  out << "baseline score: " << result.original_score << "\n";
  for (std::size_t r = 0; r < ranked.size(); ++r) {
    const auto& outcome = result.outcomes[ranked[r]];
    out << "RANK," << r + 1 << "," << outcome.id << ","
        << fingerprints.at(outcome.stream_index) << ","
        << outcome.test_score << "\n";
  }
}

}  // namespace nada::tools

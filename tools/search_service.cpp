// search_service: the elastic supervised-search CLI (svc::Supervisor).
//
// Where `shard_worker --mode worker` × N + `--mode merge` is a static
// deployment (one range per worker, launched by hand, no recovery), this
// tool runs the same search as a managed service in one command:
//
//   search_service --workers 3 --store-dir /tmp/svc
//
// The supervisor carves the fingerprint space into leasable sub-ranges,
// spawns shard_worker processes in lease mode (fork/exec; --worker-bin
// locates the binary, default "shard_worker" on PATH), watches their
// heartbeat files, restarts workers that die, kills and splits stragglers
// whose heartbeat goes stale, logs every decision to a crash-tolerant
// lease log, and finally merges every journal and runs the global
// selection + full-training funnel — printing the same
// `RANK,<pos>,<id>,<fingerprint>,<score>` lines as shard_worker, because
// the result is byte-identical to an uninterrupted run by construction
// (docs/SERVICE.md; the supervisor-smoke CI job diffs exactly that).
//
// Search flags (--domain/--search/--candidates/--seed/--gen-seed/--window)
// match shard_worker and are forwarded to every worker verbatim — the
// search definition must be process-invariant. Supervision flags:
//   --workers N             concurrent worker processes (default 2)
//   --leases N              initial sub-range leases (default: --workers)
//   --max-restarts N        re-grants per lease before giving up (3)
//   --heartbeat-timeout S   staleness threshold, seconds; 0 disables (30)
//   --poll-interval S       supervision loop cadence (0.05)
//   --store-dir DIR         journals, lease log, cluster status (required)
//   --worker-bin PATH       shard_worker binary to exec
//   --fresh                 ignore an existing lease log (default resumes)
//
// Fault injection (TEST ONLY, forwarded to workers on their FIRST attempt
// so the injected fault cannot loop — restarts get a clean command line):
//   --crash-leases K --crash-after N   first K planned leases _exit(42)
//                                      mid-append after N candidates
//   --stall-leases K --stall-after N   next K planned leases go silent
//                                      after N candidates (straggler)
//
// Exit codes follow the shared contract (tools/cli_common.h): 0 ok,
// 1 runtime/supervision failure, 2 bad arguments.
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "search/shard_runner.h"
#include "svc/lease_log.h"
#include "svc/supervisor.h"
#include "tools/cli_common.h"
#include "util/thread_pool.h"

namespace {

using namespace nada;

struct Args {
  std::string domain = "abr";
  std::string search = "state";
  std::string store_dir = "nada_svc";
  std::size_t candidates = 24;
  std::uint64_t seed = 1234;
  std::uint64_t gen_seed = 77;
  std::size_t threads = 0;  // driver's merge/full-train pass only
  std::size_t window = 0;
  std::size_t workers = 2;
  std::size_t leases = 0;
  std::size_t max_restarts = 3;
  double heartbeat_timeout = 30.0;
  double poll_interval = 0.05;
  std::string worker_bin = "shard_worker";
  bool fresh = false;
  bool quiet = false;
  // Test-only fault injection, forwarded to first-attempt workers.
  std::size_t crash_leases = 0;
  std::size_t crash_after = 3;
  std::size_t stall_leases = 0;
  std::size_t stall_after = 3;
};

[[noreturn]] void usage(const std::string& error) {
  std::cerr << "search_service: " << error << "\n"
            << "usage: search_service [--workers N] [--leases N]"
            << " [--max-restarts N] [--heartbeat-timeout S]"
            << " [--poll-interval S] [--store-dir DIR] [--worker-bin PATH]"
            << " [--fresh] [--domain abr|cc] [--search state|arch]"
            << " [--candidates N] [--seed S] [--gen-seed G] [--threads T]"
            << " [--window W] [--quiet]"
            << " [--crash-leases K --crash-after N]"
            << " [--stall-leases K --stall-after N]\n";
  std::exit(tools::kExitUsage);
}

Args parse_args(int argc, char** argv) {
  Args args;
  auto value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(std::string(argv[i]) + " needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--domain") args.domain = value(i);
    else if (flag == "--search") args.search = value(i);
    else if (flag == "--store-dir") args.store_dir = value(i);
    else if (flag == "--candidates") args.candidates = std::stoul(value(i));
    else if (flag == "--seed") args.seed = std::stoull(value(i));
    else if (flag == "--gen-seed") args.gen_seed = std::stoull(value(i));
    else if (flag == "--threads") args.threads = std::stoul(value(i));
    else if (flag == "--window") args.window = std::stoul(value(i));
    else if (flag == "--workers") args.workers = std::stoul(value(i));
    else if (flag == "--leases") args.leases = std::stoul(value(i));
    else if (flag == "--max-restarts") args.max_restarts = std::stoul(value(i));
    else if (flag == "--heartbeat-timeout")
      args.heartbeat_timeout = std::stod(value(i));
    else if (flag == "--poll-interval") args.poll_interval = std::stod(value(i));
    else if (flag == "--worker-bin") args.worker_bin = value(i);
    else if (flag == "--fresh") args.fresh = true;
    else if (flag == "--quiet") args.quiet = true;
    else if (flag == "--crash-leases") args.crash_leases = std::stoul(value(i));
    else if (flag == "--crash-after") args.crash_after = std::stoul(value(i));
    else if (flag == "--stall-leases") args.stall_leases = std::stoul(value(i));
    else if (flag == "--stall-after") args.stall_after = std::stoul(value(i));
    else usage("unknown flag " + flag);
  }
  if (args.domain != "abr" && args.domain != "cc") {
    usage("bad --domain " + args.domain);
  }
  if (args.search != "state" && args.search != "arch") {
    usage("bad --search " + args.search);
  }
  if (args.workers == 0) usage("--workers must be >= 1");
  if (args.poll_interval <= 0.0) usage("--poll-interval must be > 0");
  return args;
}

int run(const Args& args) {
  const auto setup = tools::make_search_setup(
      args.domain, args.search, args.candidates, args.gen_seed, args.window);
  std::unique_ptr<util::ThreadPool> pool;
  if (args.threads > 0) pool = std::make_unique<util::ThreadPool>(args.threads);

  search::ShardRunnerConfig shard_config;
  shard_config.num_shards = 1;  // lease ranges replace static shards
  shard_config.store_dir = args.store_dir;
  search::ShardRunner runner(*setup->domain, setup->config, args.seed,
                             shard_config, pool.get());

  svc::SupervisorConfig config;
  config.num_workers = args.workers;
  config.initial_leases = args.leases;
  config.max_restarts = args.max_restarts;
  config.heartbeat_timeout_seconds = args.heartbeat_timeout;
  config.poll_interval_seconds = args.poll_interval;
  config.dir = args.store_dir;
  config.prefix = runner.service_prefix();
  config.resume = !args.fresh;

  // The worker command line: the search flags verbatim (the definition
  // must be process-invariant) plus this lease's range and journal. Fault
  // flags ride along only on a FIRST attempt of an initially-planned
  // lease, so a restart or split child always gets a clean command.
  const auto command = [&](const svc::Lease& lease) {
    std::vector<std::string> argv{
        args.worker_bin, "--mode", "worker",
        "--journal", lease.journal_path,
        "--range-lo", svc::hex_u64(lease.range.lo),
        "--range-hi", svc::hex_u64(lease.range.hi),
        "--store-dir", args.store_dir,
        "--domain", args.domain,
        "--search", args.search,
        "--candidates", std::to_string(args.candidates),
        "--seed", std::to_string(args.seed),
        "--gen-seed", std::to_string(args.gen_seed),
        "--window", std::to_string(args.window),
        "--quiet"};
    if (lease.attempt == 0 && lease.parent == 0) {
      // Initially-planned leases are numbered 1..initial_leases in grant
      // order: crash-inject the first K, stall-inject the next K'.
      if (lease.id <= args.crash_leases) {
        argv.push_back("--crash-after-candidates");
        argv.push_back(std::to_string(args.crash_after));
      } else if (lease.id <= args.crash_leases + args.stall_leases) {
        argv.push_back("--stall-after-candidates");
        argv.push_back(std::to_string(args.stall_after));
      }
    }
    return argv;
  };

  svc::Supervisor supervisor(config, command);
  const svc::SupervisorReport report = supervisor.run();
  std::cout << "supervisor: " << report.leases_planned << " leases planned, "
            << report.leases_completed << " completed, " << report.spawned
            << " workers spawned, " << report.crash_restarts << " restarts, "
            << report.stale_kills << " stale kills, " << report.splits
            << " splits\n"
            << "lease log: " << report.event_log_path << "\n"
            << "cluster status: " << report.cluster_status_path << "\n";
  if (!report.success) {
    std::cerr << "search_service: supervision failed: " << report.error
              << "\n";
    return tools::kExitRuntime;
  }

  // Driver pass: merge every journal any lease ever owned (partials from
  // killed attempts included), then global selection + full training.
  const auto result = runner.merge_and_rank_paths(
      report.journal_paths, *setup->source, setup->fixed);
  std::cout << "driver: merged " << report.journal_paths.size()
            << " lease journals, " << result.cache_hits()
            << " stage results from workers, " << result.n_probes_run
            << " probes and " << result.n_full_trains_run
            << " full trainings executed by the driver\n"
            << "journal: " << runner.merged_store_path() << "\n";
  tools::print_ranking(
      std::cout, result,
      tools::ranked_fingerprints(*setup->source, setup->fixed, result,
                                 setup->config.num_candidates));
  return tools::kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(parse_args(argc, argv));
  } catch (const std::exception& e) {
    std::cerr << "search_service: " << e.what() << "\n";
    return tools::kExitRuntime;
  }
}

// shard_worker: the multi-process sharded-search CLI.
//
// One search, N worker processes, one driver. Every process replays the
// same candidate stream; a worker executes only its ShardPlan range of
// the fingerprint space and journals into its own shard store; the driver
// merges the shard journals, selects globally, runs the top-K full
// trainings, and prints the ranking. `single` mode runs the identical
// search in one process — its ranking and journal records must match the
// sharded run exactly (CI diffs them; tests/search_test.cpp pins the same
// property in-process).
//
//   # four workers (any order, any machines sharing the store dir), then
//   # the driver:
//   for i in 0 1 2 3; do
//     shard_worker --mode worker --shard $i --shards 4 --store-dir /tmp/s &
//   done; wait
//   shard_worker --mode merge --shards 4 --store-dir /tmp/s
//
//   # the same search, one process:
//   shard_worker --mode single --store-dir /tmp/single
//
// Ranking lines are printed as `RANK,<position>,<id>,<fingerprint>,<score>`
// so two runs diff with grep + diff. Flags: --domain abr|cc,
// --search state|arch, --candidates N, --seed S, --gen-seed G,
// --threads T (0 = serial), --window W (0 = batch mode; >= 1 streams the
// funnel in rolling windows of W candidates — same rankings and journal
// records, constant memory; the stream-equivalence-smoke CI job diffs the
// two), --quiet (suppress per-candidate events).
//
// Observability sinks (all pure readout — a run with every sink attached
// is bit-identical to a silent run; the metrics-smoke CI job diffs the
// two; see docs/OBSERVABILITY.md):
//   --metrics-out F   final MetricsRegistry snapshot as one JSON document
//   --trace-out F     every search event as one JSONL line
//   --status-out F    live, atomically-replaced status snapshot
// Sharded runs additionally always get per-worker heartbeat files next to
// the shard journals (<journal>.status.json); merge mode prints one
// summary line per worker from them and writes the cluster aggregate.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cc/cc_domain.h"
#include "env/abr_domain.h"
#include "examples/example_common.h"
#include "gen/arch_gen.h"
#include "gen/state_gen.h"
#include "obs/metrics.h"
#include "obs/metrics_observer.h"
#include "obs/status.h"
#include "obs/trace_sink.h"
#include "search/candidate.h"
#include "search/observer.h"
#include "search/shard_runner.h"
#include "search/search_job.h"
#include "store/candidate_store.h"
#include "trace/generator.h"
#include "util/fs.h"
#include "util/strings.h"
#include "util/thread_pool.h"
#include "video/video.h"

namespace {

using namespace nada;

struct Args {
  std::string mode = "single";  // worker | merge | single
  std::string domain = "abr";   // abr | cc
  std::string search = "state";  // state | arch
  std::string store_dir = "nada_store";
  std::size_t shards = 1;
  std::size_t shard = 0;
  std::size_t candidates = 24;
  std::uint64_t seed = 1234;
  std::uint64_t gen_seed = 77;
  std::size_t threads = 0;
  std::size_t window = 0;
  bool quiet = false;
  std::string metrics_out;
  std::string trace_out;
  std::string status_out;
};

[[noreturn]] void usage(const std::string& error) {
  std::cerr << "shard_worker: " << error << "\n"
            << "usage: shard_worker --mode worker|merge|single"
            << " [--shard I] [--shards N] [--store-dir DIR]"
            << " [--domain abr|cc] [--search state|arch] [--candidates N]"
            << " [--seed S] [--gen-seed G] [--threads T] [--window W]"
            << " [--quiet] [--metrics-out F] [--trace-out F]"
            << " [--status-out F]\n";
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  Args args;
  auto value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(std::string(argv[i]) + " needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--mode") args.mode = value(i);
    else if (flag == "--domain") args.domain = value(i);
    else if (flag == "--search") args.search = value(i);
    else if (flag == "--store-dir") args.store_dir = value(i);
    else if (flag == "--shards") args.shards = std::stoul(value(i));
    else if (flag == "--shard") args.shard = std::stoul(value(i));
    else if (flag == "--candidates") args.candidates = std::stoul(value(i));
    else if (flag == "--seed") args.seed = std::stoull(value(i));
    else if (flag == "--gen-seed") args.gen_seed = std::stoull(value(i));
    else if (flag == "--threads") args.threads = std::stoul(value(i));
    else if (flag == "--window") args.window = std::stoul(value(i));
    else if (flag == "--quiet") args.quiet = true;
    else if (flag == "--metrics-out") args.metrics_out = value(i);
    else if (flag == "--trace-out") args.trace_out = value(i);
    else if (flag == "--status-out") args.status_out = value(i);
    else usage("unknown flag " + flag);
  }
  if (args.mode != "worker" && args.mode != "merge" && args.mode != "single") {
    usage("bad --mode " + args.mode);
  }
  if (args.domain != "abr" && args.domain != "cc") {
    usage("bad --domain " + args.domain);
  }
  if (args.search != "state" && args.search != "arch") {
    usage("bad --search " + args.search);
  }
  if (args.shards == 0) usage("--shards must be >= 1");
  if (args.mode == "worker" && args.shard >= args.shards) {
    usage("--shard out of range");
  }
  return args;
}

/// The demo-scale funnel config every mode shares (the search must be
/// identical across worker, merge, and single runs for the diff to mean
/// anything).
search::SearchConfig demo_config(std::size_t candidates) {
  search::SearchConfig config = examples::demo_funnel_config(
      candidates, /*early_epochs=*/8, /*full_train_top=*/3, /*seeds=*/2,
      /*epochs=*/24, /*test_interval=*/8, /*max_eval_traces=*/4);
  config.baseline_arch = examples::small_pensieve_arch(8, 8, 8, 16);
  return config;
}

/// Fingerprints of the ranked outcomes only, pulled by replaying the
/// stream in small windows and keeping just the wanted positions — the
/// ranking printout must not hold O(num_candidates) specs when the search
/// itself ran at O(window) memory.
std::map<std::size_t, std::string> ranked_fingerprints(
    search::CandidateSource& source, const search::FixedDesign& fixed,
    const search::SearchResult& result, std::size_t num_candidates) {
  std::set<std::size_t> wanted;
  for (const auto& outcome : result.outcomes) {
    if (outcome.fully_trained) wanted.insert(outcome.stream_index);
  }
  std::map<std::size_t, std::string> out;
  source.reset();
  std::size_t position = 0;
  while (!wanted.empty() && position < num_candidates) {
    const auto window = source.generate(
        std::min<std::size_t>(64, num_candidates - position));
    if (window.empty()) break;
    for (const auto& spec : window) {
      if (wanted.erase(position) > 0) {
        out[position] = search::fingerprint_of(spec, fixed).hex();
      }
      ++position;
    }
  }
  return out;
}

void print_ranking(const search::SearchResult& result,
                   const std::map<std::size_t, std::string>& fingerprints) {
  // Fully trained outcomes, best first; ties by stream position (the
  // funnel's own tie-break), so the listing is deterministic. Outcomes are
  // addressed through stream_index rather than their result position: in
  // streaming mode the result holds only the retained candidates, and the
  // ranking must still diff cleanly against a batch run.
  std::vector<std::size_t> ranked;
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    if (result.outcomes[i].fully_trained) ranked.push_back(i);
  }
  std::sort(ranked.begin(), ranked.end(), [&](std::size_t a, std::size_t b) {
    if (result.outcomes[a].test_score != result.outcomes[b].test_score) {
      return result.outcomes[a].test_score > result.outcomes[b].test_score;
    }
    return result.outcomes[a].stream_index < result.outcomes[b].stream_index;
  });
  std::cout << "baseline score: " << result.original_score << "\n";
  for (std::size_t r = 0; r < ranked.size(); ++r) {
    const auto& outcome = result.outcomes[ranked[r]];
    std::cout << "RANK," << r + 1 << "," << outcome.id << ","
              << fingerprints.at(outcome.stream_index) << ","
              << outcome.test_score << "\n";
  }
}

int run(const Args& args) {
  // Build the domain. The (dataset seed, cc parameters) here are fixed:
  // every process of one sharded search must score candidates on the same
  // data or the merged journals would not be comparable.
  std::unique_ptr<env::TaskDomain> domain;
  trace::Dataset dataset;
  std::optional<video::Video> video;
  cc::CcConfig cc_config;
  if (args.domain == "abr") {
    dataset = trace::build_dataset(trace::Environment::k4G, 0.05, 21);
    video = video::make_test_video(video::youtube_ladder(), 42);
    domain = std::make_unique<env::AbrDomain>(dataset, *video);
  } else {
    dataset = trace::build_dataset(trace::Environment::k4G, 0.2, 7);
    cc_config.init_rate_mbps = 2.0;
    cc_config.steps_per_episode = 60;
    domain = std::make_unique<cc::CcDomain>(dataset, cc_config);
  }

  search::SearchConfig config = demo_config(args.candidates);
  // Execution knob only: batch (--window 0) and streaming runs share one
  // store scope, so their journals are directly comparable.
  config.window_size = args.window;
  std::unique_ptr<util::ThreadPool> pool;
  if (args.threads > 0) pool = std::make_unique<util::ThreadPool>(args.threads);

  // Candidate stream + the fixed design half.
  std::unique_ptr<gen::StateGenerator> state_gen;
  std::unique_ptr<gen::ArchGenerator> arch_gen;
  std::unique_ptr<search::CandidateSource> source;
  std::optional<dsl::StateProgram> fixed_state;
  search::FixedDesign fixed;
  if (args.search == "state") {
    state_gen = std::make_unique<gen::StateGenerator>(
        args.domain == "cc" ? gen::cc_state_space() : gen::abr_state_space(),
        gen::gpt4_profile(), gen::PromptStrategy{}, args.gen_seed);
    source = std::make_unique<search::StateCandidateSource>(*state_gen);
    fixed.arch = &config.baseline_arch;
  } else {
    arch_gen = std::make_unique<gen::ArchGenerator>(
        gen::gpt4_profile(), gen::PromptStrategy{}, args.gen_seed, 0.25);
    source = std::make_unique<search::ArchCandidateSource>(*arch_gen);
    fixed_state = dsl::StateProgram::compile(domain->baseline_state_source());
    fixed.state = &*fixed_state;
  }

  // Optional observability sinks. All of them are pure readout; building
  // them up front keeps the three modes identical in what they attach.
  search::StreamObserver observer(std::cout, !args.quiet);
  std::unique_ptr<obs::MetricsRegistry> registry;
  std::unique_ptr<obs::MetricsObserver> metrics_observer;
  std::unique_ptr<obs::TraceSink> trace;
  std::unique_ptr<obs::StatusWriter> status;
  std::vector<search::Observer*> observers{&observer};
  if (!args.metrics_out.empty()) {
    registry = std::make_unique<obs::MetricsRegistry>();
    metrics_observer = std::make_unique<obs::MetricsObserver>(*registry);
    observers.push_back(metrics_observer.get());
  }
  if (!args.trace_out.empty()) {
    util::ensure_directories(util::parent_directory(args.trace_out));
    trace = std::make_unique<obs::TraceSink>(args.trace_out);
    observers.push_back(trace.get());
  }
  if (!args.status_out.empty()) {
    util::ensure_directories(util::parent_directory(args.status_out));
    const std::string label =
        args.mode == "worker" ? "worker-" + std::to_string(args.shard) + "/" +
                                    std::to_string(args.shards)
        : args.mode == "merge" ? "driver"
                               : "single";
    status = std::make_unique<obs::StatusWriter>(
        obs::StatusConfig{args.status_out, label, args.candidates});
    observers.push_back(status.get());
  }
  // Final sink writes shared by every mode: terminal status snapshot, then
  // the metrics snapshot (one JSON document, atomically replaced).
  const auto finish_sinks = [&] {
    if (status != nullptr) status->finish();
    if (registry != nullptr) {
      util::ensure_directories(util::parent_directory(args.metrics_out));
      util::write_file_atomic(args.metrics_out,
                              registry->snapshot().dump() + "\n");
      std::cout << "metrics: " << args.metrics_out << "\n";
    }
  };

  search::ShardRunnerConfig shard_config;
  shard_config.num_shards = args.shards;
  shard_config.store_dir = args.store_dir;
  shard_config.metrics = registry.get();
  search::ShardRunner runner(*domain, config, args.seed, shard_config,
                             pool.get());

  if (args.mode == "worker") {
    const auto result =
        runner.run_worker(args.shard, *source, fixed, observers);
    std::cout << "worker " << args.shard << "/" << args.shards << ": "
              << result.n_total - result.n_out_of_shard << " of "
              << result.n_total << " candidates in shard, "
              << result.n_probes_run << " probes run, "
              << result.cache_hits() << " cache hits\n"
              << "journal: " << runner.shard_store_path(args.shard) << "\n";
    finish_sinks();
    return 0;
  }

  if (args.mode == "merge") {
    const auto result = runner.merge_and_rank(*source, fixed, nullptr,
                                              observers);
    std::cout << "driver: merged " << args.shards << " shard journals, "
              << result.cache_hits() << " stage results from shards, "
              << result.n_probes_run << " probes and "
              << result.n_full_trains_run
              << " full trainings executed by the driver\n"
              << "journal: " << runner.merged_store_path() << "\n";
    // One summary line per worker from its heartbeat file, then the
    // cluster-level aggregate document.
    const auto statuses = runner.worker_statuses();
    for (std::size_t shard = 0; shard < statuses.size(); ++shard) {
      if (!statuses[shard].has_value()) {
        std::cout << "worker " << shard << ": no status reported\n";
        continue;
      }
      const auto& worker = *statuses[shard];
      std::cout << "worker " << shard << ": "
                << worker.counter("entered") << " candidates, "
                << worker.counter("cache_hits") << " cache hits, "
                << worker.counter("failed") << " failures, "
                << util::format_duration(worker.elapsed_seconds) << "\n";
    }
    runner.write_merged_status();
    std::cout << "cluster status: " << runner.aggregate_status_path() << "\n";
    print_ranking(result, ranked_fingerprints(*source, fixed, result,
                                              config.num_candidates));
    finish_sinks();
    return 0;
  }

  // single: the whole funnel in this process, its own journal.
  util::ensure_directories(args.store_dir);
  const auto scope = runner.scope();
  store::CandidateStore store(args.store_dir + "/" + scope.env + "-" +
                                  scope.config_digest.substr(0, 12) +
                                  "-single.jsonl",
                              scope);
  search::JobOptions options;
  options.store = &store;
  options.pool = pool.get();
  options.metrics = registry.get();
  search::SearchJob job(*domain, config, args.seed, *source, fixed, options);
  for (search::Observer* o : observers) job.add_observer(o);
  const auto result = job.run_to_completion();
  std::cout << "single: " << result.n_probes_run << " probes and "
            << result.n_full_trains_run << " full trainings executed\n"
            << "journal: " << store.path() << "\n";
  print_ranking(result, ranked_fingerprints(*source, fixed, result,
                                            config.num_candidates));
  finish_sinks();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(parse_args(argc, argv));
  } catch (const std::exception& e) {
    std::cerr << "shard_worker: " << e.what() << "\n";
    return 1;
  }
}

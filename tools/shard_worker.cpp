// shard_worker: the multi-process sharded-search CLI.
//
// One search, N worker processes, one driver. Every process replays the
// same candidate stream; a worker executes only its slice of the
// fingerprint space and journals into its own shard store; the driver
// merges the shard journals, selects globally, runs the top-K full
// trainings, and prints the ranking. `single` mode runs the identical
// search in one process — its ranking and journal records must match the
// sharded run exactly (CI diffs them; tests/search_test.cpp pins the same
// property in-process).
//
//   # four workers (any order, any machines sharing the store dir), then
//   # the driver:
//   for i in 0 1 2 3; do
//     shard_worker --mode worker --shard $i --shards 4 --store-dir /tmp/s &
//   done; wait
//   shard_worker --mode merge --shards 4 --store-dir /tmp/s
//
//   # the same search, one process:
//   shard_worker --mode single --store-dir /tmp/single
//
// Worker mode has a second face: a LEASE worker under the svc::Supervisor
// (tools/search_service). Instead of --shard/--shards it takes an explicit
// fingerprint sub-range and journal —
//
//   shard_worker --mode worker --journal /tmp/s/lease-3.jsonl \
//     --range-lo 8000000000000000 --range-hi bfffffffffffffff
//
// — because supervised ranges are born from splits and re-grants, not from
// a static plan. The heartbeat lands at <journal>.status.json either way.
//
// Ranking lines are printed as `RANK,<position>,<id>,<fingerprint>,<score>`
// so two runs diff with grep + diff. Flags: --domain abr|cc,
// --search state|arch, --candidates N, --seed S, --gen-seed G,
// --threads T (0 = serial), --window W (0 = batch mode; >= 1 streams the
// funnel in rolling windows of W candidates — same rankings and journal
// records, constant memory; the stream-equivalence-smoke CI job diffs the
// two), --quiet (suppress per-candidate events).
//
// Fault injection (TEST ONLY — they exist so tests/svc_test.cpp and the
// supervisor-smoke CI job can exercise the supervisor's restart and
// straggler paths with real processes; never set them in a real run):
//   --crash-after-candidates N   after N in-range candidate completions,
//                                append a torn half-record to the journal
//                                and _exit(42) — a hard kill mid-append,
//                                exercising torn-line recovery
//   --stall-after-candidates N   after N completions, stop making progress
//                                (and heartbeating) while staying alive —
//                                a straggler for the staleness killer
//
// Exit codes (pinned in tests/svc_test.cpp; the supervisor branches on
// them): 0 ok, 1 runtime failure, 2 bad arguments (supervisor fails fast —
// a restart would reproduce it), 42 injected crash.
//
// Observability sinks (all pure readout — a run with every sink attached
// is bit-identical to a silent run; the metrics-smoke CI job diffs the
// two; see docs/OBSERVABILITY.md):
//   --metrics-out F   final MetricsRegistry snapshot as one JSON document
//   --trace-out F     every search event as one JSONL line
//   --status-out F    live, atomically-replaced status snapshot
// Sharded runs additionally always get per-worker heartbeat files next to
// the shard journals (<journal>.status.json); merge mode prints one
// summary line per worker from them and writes the cluster aggregate.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/metrics_observer.h"
#include "obs/status.h"
#include "obs/trace_sink.h"
#include "search/observer.h"
#include "search/shard_runner.h"
#include "store/candidate_store.h"
#include "svc/lease_log.h"
#include "tools/cli_common.h"
#include "util/fs.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace {

using namespace nada;

struct Args {
  std::string mode = "single";  // worker | merge | single
  std::string domain = "abr";   // abr | cc
  std::string search = "state";  // state | arch
  std::string store_dir = "nada_store";
  std::size_t shards = 1;
  std::size_t shard = 0;
  std::size_t candidates = 24;
  std::uint64_t seed = 1234;
  std::uint64_t gen_seed = 77;
  std::size_t threads = 0;
  std::size_t window = 0;
  bool quiet = false;
  std::string metrics_out;
  std::string trace_out;
  std::string status_out;
  // Lease mode (supervised worker): explicit range + journal.
  std::string journal;
  std::optional<std::uint64_t> range_lo;
  std::optional<std::uint64_t> range_hi;
  // Test-only fault injection.
  std::optional<std::size_t> crash_after;
  std::optional<std::size_t> stall_after;
};

[[noreturn]] void usage(const std::string& error) {
  std::cerr << "shard_worker: " << error << "\n"
            << "usage: shard_worker --mode worker|merge|single"
            << " [--shard I] [--shards N] [--store-dir DIR]"
            << " [--journal F --range-lo HEX --range-hi HEX]"
            << " [--domain abr|cc] [--search state|arch] [--candidates N]"
            << " [--seed S] [--gen-seed G] [--threads T] [--window W]"
            << " [--quiet] [--metrics-out F] [--trace-out F]"
            << " [--status-out F] [--crash-after-candidates N]"
            << " [--stall-after-candidates N]\n";
  std::exit(tools::kExitUsage);
}

Args parse_args(int argc, char** argv) {
  Args args;
  auto value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(std::string(argv[i]) + " needs a value");
    return argv[++i];
  };
  auto hex_value = [&](int& i) -> std::uint64_t {
    const std::string text = value(i);
    try {
      return svc::parse_hex_u64(text);
    } catch (const std::exception&) {
      usage(std::string(argv[i - 1]) + ": malformed hex '" + text + "'");
    }
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--mode") args.mode = value(i);
    else if (flag == "--domain") args.domain = value(i);
    else if (flag == "--search") args.search = value(i);
    else if (flag == "--store-dir") args.store_dir = value(i);
    else if (flag == "--shards") args.shards = std::stoul(value(i));
    else if (flag == "--shard") args.shard = std::stoul(value(i));
    else if (flag == "--candidates") args.candidates = std::stoul(value(i));
    else if (flag == "--seed") args.seed = std::stoull(value(i));
    else if (flag == "--gen-seed") args.gen_seed = std::stoull(value(i));
    else if (flag == "--threads") args.threads = std::stoul(value(i));
    else if (flag == "--window") args.window = std::stoul(value(i));
    else if (flag == "--quiet") args.quiet = true;
    else if (flag == "--metrics-out") args.metrics_out = value(i);
    else if (flag == "--trace-out") args.trace_out = value(i);
    else if (flag == "--status-out") args.status_out = value(i);
    else if (flag == "--journal") args.journal = value(i);
    else if (flag == "--range-lo") args.range_lo = hex_value(i);
    else if (flag == "--range-hi") args.range_hi = hex_value(i);
    else if (flag == "--crash-after-candidates")
      args.crash_after = std::stoul(value(i));
    else if (flag == "--stall-after-candidates")
      args.stall_after = std::stoul(value(i));
    else usage("unknown flag " + flag);
  }
  if (args.mode != "worker" && args.mode != "merge" && args.mode != "single") {
    usage("bad --mode " + args.mode);
  }
  if (args.domain != "abr" && args.domain != "cc") {
    usage("bad --domain " + args.domain);
  }
  if (args.search != "state" && args.search != "arch") {
    usage("bad --search " + args.search);
  }
  if (args.shards == 0) usage("--shards must be >= 1");
  if (args.mode == "worker" && args.shard >= args.shards) {
    usage("--shard out of range");
  }
  const bool lease = !args.journal.empty() || args.range_lo.has_value() ||
                     args.range_hi.has_value();
  if (lease) {
    if (args.mode != "worker") usage("--journal/--range-* need --mode worker");
    if (args.journal.empty() || !args.range_lo || !args.range_hi) {
      usage("lease mode needs all of --journal, --range-lo, --range-hi");
    }
    if (*args.range_lo > *args.range_hi) {
      usage("--range-lo must be <= --range-hi");
    }
  }
  if ((args.crash_after || args.stall_after) && args.mode != "worker") {
    usage("fault injection needs --mode worker");
  }
  return args;
}

/// TEST ONLY. Counts in-range candidate completions (anything past the
/// entered/out-of-shard bookkeeping: cache hits, failures, probes, ...) and
/// fires the configured fault once the count is reached. The crash mimics a
/// power cut mid-append — half a JSON record, no newline, then _exit — so
/// the restarted worker exercises the store's torn-line recovery for real.
class FaultInjector : public search::Observer {
 public:
  FaultInjector(const Args& args, std::string journal_path)
      : args_(&args), journal_path_(std::move(journal_path)) {}

  void on_candidate(const search::CandidateEvent& event) override {
    if (event.type == search::CandidateEventType::kEntered ||
        event.type == search::CandidateEventType::kOutOfShard) {
      return;
    }
    ++completions_;
    if (args_->crash_after && completions_ >= *args_->crash_after) {
      std::ofstream torn(journal_path_, std::ios::app | std::ios::binary);
      if (store::format_for_path(journal_path_) ==
          store::StoreFormat::kBinary) {
        // A frame header promising more body bytes than follow — the
        // binary analogue of half a JSON line.
        const char partial[] = {100, 0, 0, 0, 1, 2, 3, 4,
                                5,   6, 7, 8, 't', 'o', 'r', 'n'};
        torn.write(partial, sizeof(partial));
      } else {
        torn << R"({"v":1,"id":"torn-by-crash-injection","stage":)";
      }
      torn.flush();
      std::_Exit(tools::kExitCrashInjected);
    }
    if (args_->stall_after && completions_ >= *args_->stall_after) {
      // Stay alive, make no progress, heartbeat never again (the status
      // writer only writes on events, and no event ever follows): the
      // supervisor's staleness check must kill us.
      for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
    }
  }

 private:
  const Args* args_;
  std::string journal_path_;
  std::size_t completions_ = 0;
};

int run(const Args& args) {
  const auto setup = tools::make_search_setup(
      args.domain, args.search, args.candidates, args.gen_seed, args.window);
  std::unique_ptr<util::ThreadPool> pool;
  if (args.threads > 0) pool = std::make_unique<util::ThreadPool>(args.threads);

  // Optional observability sinks. All of them are pure readout; building
  // them up front keeps the modes identical in what they attach.
  search::StreamObserver observer(std::cout, !args.quiet);
  std::unique_ptr<obs::MetricsRegistry> registry;
  std::unique_ptr<obs::MetricsObserver> metrics_observer;
  std::unique_ptr<obs::TraceSink> trace;
  std::unique_ptr<obs::StatusWriter> status;
  std::vector<search::Observer*> observers{&observer};
  if (!args.metrics_out.empty()) {
    registry = std::make_unique<obs::MetricsRegistry>();
    metrics_observer = std::make_unique<obs::MetricsObserver>(*registry);
    observers.push_back(metrics_observer.get());
  }
  if (!args.trace_out.empty()) {
    util::ensure_directories(util::parent_directory(args.trace_out));
    trace = std::make_unique<obs::TraceSink>(args.trace_out);
    observers.push_back(trace.get());
  }
  if (!args.status_out.empty()) {
    util::ensure_directories(util::parent_directory(args.status_out));
    const std::string label =
        args.mode == "worker" ? "worker-" + std::to_string(args.shard) + "/" +
                                    std::to_string(args.shards)
        : args.mode == "merge" ? "driver"
                               : "single";
    status = std::make_unique<obs::StatusWriter>(
        obs::StatusConfig{args.status_out, label, args.candidates});
    observers.push_back(status.get());
  }
  // Final sink writes shared by every mode: terminal status snapshot, then
  // the metrics snapshot (one JSON document, atomically replaced).
  const auto finish_sinks = [&] {
    if (status != nullptr) status->finish();
    if (registry != nullptr) {
      util::ensure_directories(util::parent_directory(args.metrics_out));
      util::write_file_atomic(args.metrics_out,
                              registry->snapshot().dump() + "\n");
      std::cout << "metrics: " << args.metrics_out << "\n";
    }
  };

  search::ShardRunnerConfig shard_config;
  shard_config.num_shards = args.shards;
  shard_config.store_dir = args.store_dir;
  shard_config.metrics = registry.get();
  search::ShardRunner runner(*setup->domain, setup->config, args.seed,
                             shard_config, pool.get());

  if (args.mode == "worker") {
    const bool lease = !args.journal.empty();
    const std::string journal_path =
        lease ? args.journal : runner.shard_store_path(args.shard);
    std::unique_ptr<FaultInjector> fault;
    if (args.crash_after || args.stall_after) {
      fault = std::make_unique<FaultInjector>(args, journal_path);
      observers.push_back(fault.get());
    }
    search::SearchResult result;
    if (lease) {
      const store::ShardPlan::Range range{*args.range_lo, *args.range_hi};
      result = runner.run_range(range, journal_path, *setup->source,
                                setup->fixed, observers);
      std::cout << "lease [" << svc::hex_u64(range.lo) << ", "
                << svc::hex_u64(range.hi) << "]: ";
    } else {
      result = runner.run_worker(args.shard, *setup->source, setup->fixed,
                                 observers);
      std::cout << "worker " << args.shard << "/" << args.shards << ": ";
    }
    std::cout << result.n_total - result.n_out_of_shard << " of "
              << result.n_total << " candidates in range, "
              << result.n_probes_run << " probes run, "
              << result.cache_hits() << " cache hits\n"
              << "journal: " << journal_path << "\n";
    finish_sinks();
    return tools::kExitOk;
  }

  if (args.mode == "merge") {
    const auto result = runner.merge_and_rank(*setup->source, setup->fixed,
                                              nullptr, observers);
    std::cout << "driver: merged " << args.shards << " shard journals, "
              << result.cache_hits() << " stage results from shards, "
              << result.n_probes_run << " probes and "
              << result.n_full_trains_run
              << " full trainings executed by the driver\n"
              << "journal: " << runner.merged_store_path() << "\n";
    // One summary line per worker from its heartbeat file, then the
    // cluster-level aggregate document.
    const auto statuses = runner.worker_statuses();
    for (std::size_t shard = 0; shard < statuses.size(); ++shard) {
      if (!statuses[shard].has_value()) {
        std::cout << "worker " << shard << ": no status reported\n";
        continue;
      }
      const auto& worker = *statuses[shard];
      std::cout << "worker " << shard << ": "
                << worker.counter("entered") << " candidates, "
                << worker.counter("cache_hits") << " cache hits, "
                << worker.counter("failed") << " failures, "
                << util::format_duration(worker.elapsed_seconds) << "\n";
    }
    runner.write_merged_status();
    std::cout << "cluster status: " << runner.aggregate_status_path() << "\n";
    tools::print_ranking(
        std::cout, result,
        tools::ranked_fingerprints(*setup->source, setup->fixed, result,
                                   setup->config.num_candidates));
    finish_sinks();
    return tools::kExitOk;
  }

  // single: the whole funnel in this process, its own journal.
  util::ensure_directories(args.store_dir);
  const auto scope = runner.scope();
  store::CandidateStore store(
      args.store_dir + "/" + scope.env + "-" +
          scope.config_digest.substr(0, 12) + "-single" +
          store::journal_extension(store::store_format_from_env()),
      scope);
  search::JobOptions options;
  options.store = &store;
  options.pool = pool.get();
  options.metrics = registry.get();
  search::SearchJob job(*setup->domain, setup->config, args.seed,
                        *setup->source, setup->fixed, options);
  for (search::Observer* o : observers) job.add_observer(o);
  const auto result = job.run_to_completion();
  std::cout << "single: " << result.n_probes_run << " probes and "
            << result.n_full_trains_run << " full trainings executed\n"
            << "journal: " << store.path() << "\n";
  tools::print_ranking(
      std::cout, result,
      tools::ranked_fingerprints(*setup->source, setup->fixed, result,
                                 setup->config.num_candidates));
  finish_sinks();
  return tools::kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(parse_args(argc, argv));
  } catch (const std::exception& e) {
    std::cerr << "shard_worker: " << e.what() << "\n";
    return tools::kExitRuntime;
  }
}

// store_convert: migrate candidate-store journals between formats.
//
//   store_convert --in runs/fcc-abc.jsonl --out runs/fcc-abc.nsb
//   store_convert --in runs/fcc-abc.nsb --out roundtrip.jsonl
//
// The output format is implied by the --out extension (".nsb" = binary,
// anything else JSONL). Conversion is lossless and order-preserving: every
// decodable record is re-encoded with the scope its journal line carried,
// duplicates and all, so converting back reproduces the original journal
// byte for byte (modulo recovered torn/corrupt units, which are dropped
// and reported). Exit 0 on success, 2 on usage or I/O errors.
#include <cstdio>
#include <exception>
#include <string>

#include "store/convert.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --in <journal> --out <journal>\n"
               "  formats by extension: .nsb = binary, otherwise JSONL\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string in_path;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--in" && i + 1 < argc) {
      in_path = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }
  if (in_path.empty() || out_path.empty() || in_path == out_path) {
    return usage(argv[0]);
  }
  try {
    const auto stats = nada::store::convert_journal(in_path, out_path);
    std::printf("converted %zu record(s) %s -> %s (%zu torn/corrupt unit(s) "
                "dropped)\n",
                stats.records, in_path.c_str(), out_path.c_str(),
                stats.skipped);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "store_convert: %s\n", e.what());
    return 2;
  }
  return 0;
}
